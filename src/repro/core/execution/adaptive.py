"""Mid-query adaptive execution: strategy switching and plan-shape migration.

Two adaptive executors live here, both running the input in *segments*
(geometrically growing row slices) built from the ordinary strategy
operators:

* :class:`AdaptiveStrategyOperator` — per-UDF *strategy* switching within
  the committed plan shape (PR 3);
* :class:`PlanMigrationOperator` — its generalisation: one operator owns the
  whole client-site UDF chain, and a
  :class:`~repro.adaptive.reoptimizer.ReOptimizer` re-enters the System-R
  enumerator at segment boundaries, migrating the unprocessed tail to a
  structurally different plan (reordered UDF applications, different
  per-UDF strategies) when the observed statistics demand it.

The three committed strategies process their whole input under the plan's
choice.  The :class:`AdaptiveStrategyOperator` instead runs the input in
*segments*: each segment executes under
the currently-best strategy via the ordinary strategy operators, and at every
segment boundary the operator hands the
:class:`~repro.adaptive.switcher.StrategySwitcher` what the run observed —
the cumulative surviving fraction of the pushable predicate, the effective
bandwidth each link actually delivered, the measured per-call UDF cost — plus
the exact byte shape of the unprocessed tail.  The switcher re-costs the
remaining rows under every strategy
(:func:`~repro.core.optimizer.cost.remaining_strategy_cost`) and, with
hysteresis, may hand the tail to a different strategy executor.

Partial results are merged trivially (each segment produces its own
post-predicate, projected output rows, and all strategies produce identical
rows for identical inputs), and client-side state carries over naturally:
the segments share one :class:`~repro.core.execution.context.RemoteExecutionContext`,
so the client runtime's result cache keeps answering duplicate arguments
across segments — and across a switch — without re-invoking the UDF.

Because every segment applies the pushable predicate (at the client under
the client-site join, on the server under naive/semi-join), the operator's
output is always the *filtered* relation; its output schema and rows are
identical to a committed client-site join with the same predicate and
projection, whatever sequence of strategies actually ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adaptive.reoptimizer import (
    MigrationObservation,
    PlanShape,
    PredicateSpec,
    ReOptimizer,
    assign_predicates_to_stages,
)
from repro.adaptive.store import canonical_predicate_key
from repro.adaptive.switcher import SegmentObservation, StrategySwitcher, SwitchPolicy
from repro.client.udf import UdfDefinition
from repro.core.execution.base import RemoteUdfOperator
from repro.core.execution.clientjoin import ClientSiteJoinOperator
from repro.core.execution.context import RemoteExecutionContext
from repro.core.execution.semijoin import SemiJoinSegmentState
from repro.core.strategies import StrategyConfig
from repro.relational.expressions import Expression, conjoin
from repro.relational.operators.base import CollectingOperator, Operator
from repro.relational.tuples import RowBatch, concat_batches


class AdaptiveStrategyOperator(ClientSiteJoinOperator):
    """Runs a client-site UDF in segments, switching strategies mid-query.

    Construction mirrors :class:`ClientSiteJoinOperator` (the operator owns
    the pushable predicate and projection whatever strategy executes them);
    ``config.strategy`` is the *initial* strategy and ``config.switch_policy``
    parameterises the switcher.  After execution, :attr:`switcher` holds the
    full decision trace and :attr:`segments` the ``(strategy, rows)`` slices
    that actually ran.
    """

    def __init__(
        self,
        child: Operator,
        udf: UdfDefinition,
        argument_columns: Sequence[str],
        context: RemoteExecutionContext,
        config: Optional[StrategyConfig] = None,
        pushable_predicate: Optional[Expression] = None,
        output_columns: Optional[Sequence[str]] = None,
        result_column_name: Optional[str] = None,
    ) -> None:
        super().__init__(
            child,
            udf,
            argument_columns,
            context,
            config=config,
            pushable_predicate=pushable_predicate,
            output_columns=output_columns,
            result_column_name=result_column_name,
        )
        policy = self.config.switch_policy
        self.policy = policy if policy is not None else SwitchPolicy()
        # A statistics store attached to the config supplies the measured
        # prior for this (UDF, predicate): a repeat query starts from what
        # an earlier run observed instead of the declared value, and does
        # not re-earn the evidence floor before its first switch.
        prior = None
        if self.config.statistics is not None and pushable_predicate is not None:
            prior = self.config.statistics.selectivity_prior(
                udf.name, str(pushable_predicate)
            )
        self.switcher = StrategySwitcher(
            policy=self.policy,
            initial_strategy=self.config.strategy,
            declared_selectivity=udf.selectivity,
            prior_selectivity=prior,
        )
        #: ``(strategy, input_rows)`` per executed segment, in order.
        self.segments: List[Tuple[object, int]] = []
        #: Semi-join duplicate-elimination state shared by every segment, so
        #: a later semi-join segment never re-ships arguments an earlier one
        #: already resolved (wire-row counts match an unsegmented run).
        self._semi_join_state = SemiJoinSegmentState()

    # -- execution ---------------------------------------------------------------------

    def _execute_batches(self, batch_size):
        from repro.core.execution.rewrite import build_operator

        batch = concat_batches(
            list(self.child().execute_batches(batch_size)),
            column_count=len(self.child_schema),
        )
        self.input_row_count = len(batch)
        self._precompute_suffixes(batch)
        self.distinct_argument_count = self._suffix_distinct[0] if len(batch) else 0

        outputs: List[RowBatch] = []
        position = 0
        index = 0
        total = len(batch)
        while position < total:
            strategy = self.switcher.current_strategy
            segment = batch.slice(
                position, position + self.switcher.next_segment_rows(index)
            )
            position += len(segment)

            # One plain (non-switching) strategy operator per segment, over
            # the materialised slice, sharing this operator's context — and
            # therefore its simulator clock, link stats, adaptive batch
            # controller, and client result cache.
            segment_config = (
                self.config.with_strategy(strategy)
                .with_switch_policy(None)
                .with_reoptimizer(None)
            )
            operator = build_operator(
                child=CollectingOperator(self.child_schema, segment),
                udf=self.udf,
                argument_columns=self.argument_columns,
                context=self.context,
                config=segment_config,
                pushable_predicate=self.pushable_predicate,
                output_columns=self.output_columns,
                result_column_name=self.result_column.name,
                semi_join_state=self._semi_join_state,
            )
            before = self._snapshot()
            segment_output = concat_batches(
                list(operator.execute_batches(batch_size)),
                column_count=len(self.schema),
            )
            outputs.append(segment_output)
            self.segments.append((strategy, len(segment)))
            self._carry_instrumentation(operator)

            if position < total:
                self.switcher.observe_segment(
                    self._segment_observation(
                        len(segment), len(segment_output), position, before
                    )
                )
            index += 1

        output = concat_batches(outputs, column_count=len(self.schema))
        self.output_row_count = len(output)
        for start in range(0, len(output), batch_size):
            yield output.slice(start, start + batch_size)

    def _precompute_suffixes(self, batch: RowBatch) -> None:
        """Per-suffix aggregates of the input, computed in one backward pass.

        Segment boundaries need the byte shape and duplicate structure of the
        unprocessed tail; precomputing suffix sums keeps each boundary O(1)
        instead of rescanning the tail (which would make long adaptive runs
        quadratic in the input size).  The per-row sizes come off the column
        buffers in bulk (constant-folded for NULL-free typed columns).
        """
        if self._projection_positions is not None:
            child_positions: Tuple[int, ...] = tuple(
                position
                for position in self._projection_positions
                if position < len(self.child_schema)
            )
        else:
            child_positions = tuple(range(len(self.child_schema)))

        count = len(batch)
        record_sizes = batch.row_sizes(self.child_schema)
        argument_sizes = batch.value_sizes(self._argument_positions)
        projected_sizes = batch.value_sizes(child_positions)
        argument_tuples = self.argument_tuples(batch)

        self._suffix_record_bytes = [0.0] * (count + 1)
        self._suffix_argument_bytes = [0.0] * (count + 1)
        self._suffix_projected_bytes = [0.0] * (count + 1)
        self._suffix_distinct = [0] * (count + 1)
        seen: set = set()
        for position in range(count - 1, -1, -1):
            seen.add(argument_tuples[position])
            self._suffix_record_bytes[position] = (
                self._suffix_record_bytes[position + 1] + record_sizes[position]
            )
            self._suffix_argument_bytes[position] = (
                self._suffix_argument_bytes[position + 1] + argument_sizes[position]
            )
            self._suffix_projected_bytes[position] = (
                self._suffix_projected_bytes[position + 1] + projected_sizes[position]
            )
            self._suffix_distinct[position] = len(seen)

    # -- observation plumbing ----------------------------------------------------------

    def _snapshot(self) -> Tuple[float, float, float, float, float, int]:
        """Link and client counters before a segment, for delta measurement."""
        stats = self.context.channel_stats
        client = self.context.client
        return (
            stats.downlink.total_bytes,
            stats.downlink.busy_seconds,
            stats.uplink.total_bytes,
            stats.uplink.busy_seconds,
            client.compute_seconds_of(self.udf.name),
            client.invocations_of(self.udf.name),
        )

    def _segment_observation(
        self,
        processed: int,
        surviving: int,
        position: int,
        before: Tuple[float, float, float, float, float, int],
    ) -> SegmentObservation:
        stats = self.context.channel_stats
        network = self.context.network

        down_bytes = stats.downlink.total_bytes - before[0]
        down_busy = stats.downlink.busy_seconds - before[1]
        up_bytes = stats.uplink.total_bytes - before[2]
        up_busy = stats.uplink.busy_seconds - before[3]
        downlink = self._bandwidth(
            down_bytes, down_busy, network.downlink_bandwidth if network else None
        )
        uplink = self._bandwidth(
            up_bytes, up_busy, network.uplink_bandwidth if network else None
        )

        compute = self.context.client.compute_seconds_of(self.udf.name) - before[4]
        invocations = self.context.client.invocations_of(self.udf.name) - before[5]
        per_call = (
            compute / invocations if invocations > 0 else self.udf.cost_per_call_seconds
        )

        remaining = self.input_row_count - position
        record_bytes = self._suffix_record_bytes[position] / remaining
        argument_bytes = self._suffix_argument_bytes[position] / remaining
        # Distinct tuples of the suffix bound the remaining distinct work (a
        # duplicate of an already-processed argument is free at the client
        # anyway, via the shared result cache).
        distinct_fraction = self._suffix_distinct[position] / remaining
        result_bytes = float(
            self.udf.result_size_bytes if self.udf.result_size_bytes is not None else 8
        )
        returned_row_bytes = self._suffix_projected_bytes[position] / remaining + result_bytes

        configured_window = self.config.next_overlap_window(self.udf.name)
        return SegmentObservation(
            rows_processed=processed,
            rows_surviving=surviving,
            remaining_rows=remaining,
            remaining_record_bytes=record_bytes,
            remaining_argument_bytes=argument_bytes,
            remaining_distinct_fraction=distinct_fraction,
            returned_row_bytes=returned_row_bytes,
            result_bytes=result_bytes,
            udf_seconds_per_call=per_call,
            downlink_bandwidth=downlink,
            uplink_bandwidth=uplink,
            latency=network.latency if network is not None else 0.0,
            batch_size=float(self.next_batch_size()),
            overlap_window=(
                float(configured_window) if configured_window is not None else None
            ),
            has_predicate=self.pushable_predicate is not None,
        )

    @staticmethod
    def _bandwidth(
        delta_bytes: float, delta_busy: float, configured: Optional[float]
    ) -> float:
        """Observed effective bandwidth over a segment, else the configured one."""
        if delta_busy > 1e-9 and delta_bytes > 0:
            return delta_bytes / delta_busy
        if configured is not None:
            return configured
        return 1e9  # no network model at all: transfers are effectively free

    def _carry_instrumentation(self, operator: Operator) -> None:
        """Propagate the inner remote operator's simulation bookkeeping."""
        inner = _find_remote(operator)
        if inner is None:
            return
        factor = getattr(inner, "concurrency_factor_used", None)
        if factor is not None:
            self.concurrency_factor_used = factor
        occupancy = getattr(inner, "peak_pipeline_occupancy", None)
        if occupancy is not None:
            self.peak_pipeline_occupancy = occupancy
        self.peak_in_flight_batches = max(
            self.peak_in_flight_batches, getattr(inner, "peak_in_flight_batches", 0)
        )
        self.send_stall_seconds += getattr(inner, "send_stall_seconds", 0.0)
        window = getattr(inner, "overlap_window_used", None)
        if window is not None:
            self.overlap_window_used = window

    def describe(self) -> str:
        used = "/".join(strategy.value for strategy in self.switcher.strategies_used)
        return (
            f"{type(self).__name__}({self.udf.name} on "
            f"{', '.join(self.argument_columns)}, strategies {used})"
        )


def _find_remote(operator: Operator) -> Optional[RemoteUdfOperator]:
    """The remote UDF operator inside a (possibly Filter/Project-wrapped) tree."""
    if isinstance(operator, RemoteUdfOperator):
        return operator
    for child in operator.children:
        found = _find_remote(child)
        if found is not None:
            return found
    return None


# ---------------------------------------------------------------------------
# Plan-shape migration (mid-query re-optimization)
# ---------------------------------------------------------------------------


@dataclass
class MigrationStage:
    """One client-site UDF application owned by a :class:`PlanMigrationOperator`."""

    udf: UdfDefinition
    argument_columns: Tuple[str, ...]
    result_column_name: str
    strategy: "ExecutionStrategy"


@dataclass
class MigrationPredicate:
    """A UDF-referencing predicate the migration operator assigns dynamically.

    ``expression`` is the predicate in rewritten (result column) form over
    the operator's canonical extended schema; ``udf_names`` the lower-cased
    UDFs whose results it references.  Under each plan shape the predicate is
    pushed at the earliest stage where every referenced UDF has been applied
    — which is why observations of it are keyed by the shape-independent
    ``key`` (:func:`~repro.adaptive.store.canonical_predicate_key`).
    """

    expression: Expression
    udf_names: frozenset
    declared_selectivity: float = 1.0

    @property
    def key(self) -> str:
        return canonical_predicate_key(self.expression)

    def spec(self) -> PredicateSpec:
        return PredicateSpec(
            key=self.key,
            udf_names=self.udf_names,
            declared_selectivity=self.declared_selectivity,
        )


class _StageView:
    """Per-(stage, predicate) observation proxy for the runtime observer.

    Duck-types the counters :class:`~repro.adaptive.observer.RuntimeObserver`
    reads off a remote UDF operator, so migrated executions feed the same
    observe → calibrate loop committed executions do.  ``pushable_predicate``
    is the canonical predicate identity string — already the key the
    statistics store files selectivities under.
    """

    def __init__(
        self,
        udf: UdfDefinition,
        input_row_count: int,
        output_row_count: int,
        distinct_argument_count: int,
        pushable_predicate: Optional[str],
    ) -> None:
        self.udf = udf
        self.input_row_count = input_row_count
        self.output_row_count = output_row_count
        self.distinct_argument_count = distinct_argument_count
        self.pushable_predicate = pushable_predicate


class PlanMigrationOperator(Operator):
    """Runs a whole client-site UDF chain in segments, migrating plan shape.

    The generalisation of :class:`AdaptiveStrategyOperator` from "switch one
    UDF's shipping strategy" to "migrate the committed plan shape": each
    segment of the input runs through a freshly built pipeline of plain
    strategy operators in the *current* UDF application order, and at every
    segment boundary the :class:`~repro.adaptive.reoptimizer.ReOptimizer`
    re-enters the optimizer with everything observed so far.  When it
    migrates, the unprocessed tail runs under the new shape — different UDF
    order, different per-UDF strategies, predicates pushed at different
    operators.

    Result equivalence across every migration path holds because

    * segments are *drained*: each segment's pipeline runs to completion
      (all in-flight batches acknowledged) before the boundary, so no row is
      split across shapes;
    * every shape applies the same predicate set (each predicate at the
      earliest stage where its referenced UDF results exist) and extends rows
      with the same result columns, merely in a different column order — the
      operator re-orders every segment's output into one canonical schema
      before merging;
    * client-side state survives migration: all segments share one execution
      context (one client result cache), and each UDF carries one
      :class:`~repro.core.execution.semijoin.SemiJoinSegmentState` across
      segments, so duplicate arguments are never re-shipped, whatever shapes
      ran.
    """

    def __init__(
        self,
        child: Operator,
        stages: Sequence[MigrationStage],
        context: RemoteExecutionContext,
        config: Optional[StrategyConfig] = None,
        predicates: Sequence[MigrationPredicate] = (),
        output_columns: Optional[Sequence[str]] = None,
        reoptimizer: Optional[ReOptimizer] = None,
    ) -> None:
        super().__init__([child])
        if not stages:
            raise ValueError("PlanMigrationOperator needs at least one UDF stage")
        self.context = context
        self.config = config if config is not None else StrategyConfig()
        self.stages = list(stages)
        self.predicates = list(predicates)
        self.reoptimizer = (
            reoptimizer
            if reoptimizer is not None
            else (self.config.reoptimizer or ReOptimizer())
        )

        self.child_schema = child.output_schema()
        self._stage_by_name: Dict[str, MigrationStage] = {
            stage.udf.name.lower(): stage for stage in self.stages
        }
        #: Canonical column order: child columns, then result columns in the
        #: *declared* stage order.  Every segment's output is re-ordered into
        #: this shape before merging, whatever order its pipeline ran in.
        self._declared_order: Tuple[str, ...] = tuple(
            stage.udf.name.lower() for stage in self.stages
        )
        from repro.relational.schema import Column

        extended = self.child_schema
        for stage in self.stages:
            extended = extended.append(Column(stage.result_column_name, stage.udf.result_dtype))
        self.extended_schema = extended
        self.output_columns = list(output_columns) if output_columns is not None else None
        if self.output_columns is not None:
            self._projection_positions: Optional[Tuple[int, ...]] = tuple(
                self.extended_schema.index_of(name) for name in self.output_columns
            )
            self.schema = self.extended_schema.select_positions(self._projection_positions)
        else:
            self._projection_positions = None
            self.schema = self.extended_schema

        initial_shape = PlanShape.of(
            [stage.udf.name for stage in self.stages],
            {stage.udf.name: stage.strategy for stage in self.stages},
        )
        self.reoptimizer.bind(
            initial_shape, [predicate.spec() for predicate in self.predicates]
        )

        # Instrumentation the executor and observer read.
        self.input_row_count = 0
        self.output_row_count = 0
        self.peak_in_flight_batches = 0
        self.send_stall_seconds = 0.0
        self.overlap_window_used: Optional[int] = None
        #: ``(shape, input_rows)`` per executed segment, in order.
        self.segments: List[Tuple[PlanShape, int]] = []
        # Cumulative per-canonical-predicate (survived, processed) counts and
        # per-UDF unit row counts, across all segments and shapes.
        self._predicate_counts: Dict[str, Tuple[int, int]] = {}
        self._udf_unit_counts: Dict[str, Tuple[int, int, int]] = {}
        # One carried semi-join / naive duplicate-elimination state per UDF.
        self._states: Dict[str, SemiJoinSegmentState] = {
            name: SemiJoinSegmentState() for name in self._declared_order
        }

    # -- execution ---------------------------------------------------------------------

    def _execute_batches(self, batch_size):
        batch = concat_batches(
            list(self.child().execute_batches(batch_size)),
            column_count=len(self.child_schema),
        )
        self.input_row_count = len(batch)
        self._precompute_suffixes(batch)

        policy = self.reoptimizer.policy
        outputs: List[RowBatch] = []
        position = 0
        index = 0
        total = len(batch)
        while position < total:
            shape = self.reoptimizer.current_shape
            # Once the controller settles — re-plan budget spent, or enough
            # consecutive boundaries confirmed the incumbent shape — no
            # boundary can change the plan any more: segment boundaries
            # would be pure overhead (extra messages, pipeline fills), so
            # the whole tail drains as one final segment.
            exhausted = self.reoptimizer.settled
            take = total - position if exhausted else policy.next_segment_rows(index)
            segment = batch.slice(position, position + take)
            position += len(segment)

            units, stage_keys = self._build_pipeline(shape, segment)
            segment_output = concat_batches(
                list(units[-1].execute_batches(batch_size)),
                column_count=len(self.schema),
            )
            self._account_segment(shape, units, stage_keys, len(segment))
            if self.output_columns is None:
                # Without a pushable projection each shape extends rows with
                # the same result columns in its own order; re-order into the
                # canonical schema before merging.  (With one, the pipeline's
                # last stage already projects to the final output shape,
                # identically under every plan shape.)
                segment_output = self._canonicalise(shape, segment_output)
            outputs.append(segment_output)
            self.segments.append((shape, len(segment)))

            if position < total and not exhausted:
                self.reoptimizer.consider(self._observation(position))
            index += 1

        output = concat_batches(outputs, column_count=len(self.schema))
        self.output_row_count = len(output)
        for start in range(0, len(output), batch_size):
            yield output.slice(start, start + batch_size)

    def _build_pipeline(
        self, shape: PlanShape, segment: RowBatch
    ) -> Tuple[List[Operator], List[Optional[str]]]:
        """The per-segment operator chain under ``shape``.

        Returns the stage units (one per UDF, possibly Filter-wrapped by
        ``build_operator``) and, per stage, the canonical key of the
        predicate conjunction pushed there (None when the stage filters
        nothing).
        """
        from repro.core.execution.rewrite import build_operator

        operator: Operator = CollectingOperator(self.child_schema, segment)
        units: List[Operator] = []
        stage_keys: List[Optional[str]] = []
        assignment = assign_predicates_to_stages(shape.udf_order, self.predicates)
        stage_projections = self._stage_projections(shape, assignment)
        for name, indexes, projection in zip(shape.udf_order, assignment, stage_projections):
            stage = self._stage_by_name[name]
            conjunction = conjoin([self.predicates[i].expression for i in indexes])
            stage_config = (
                self.config.with_strategy(shape.strategy_of(name))
                .with_switch_policy(None)
                .with_reoptimizer(None)
            )
            operator = build_operator(
                child=operator,
                udf=stage.udf,
                argument_columns=list(stage.argument_columns),
                context=self.context,
                config=stage_config,
                pushable_predicate=conjunction,
                output_columns=projection,
                result_column_name=stage.result_column_name,
                semi_join_state=self._states[name],
            )
            units.append(operator)
            stage_keys.append(
                canonical_predicate_key(conjunction) if conjunction is not None else None
            )
        return units, stage_keys

    def _stage_projections(
        self, shape: PlanShape, assignment: List[List[int]]
    ) -> List[Optional[List[str]]]:
        """Per-stage pushable projections under ``shape``.

        Without an operator-level projection every stage keeps every column
        (``None`` throughout — the legacy behaviour).  With one, each
        mid-chain stage keeps only the columns still needed *downstream* —
        the final output columns, argument columns of later stages, and
        columns of predicates assigned to later stages — and the last stage
        projects to the final output columns themselves.  Client-site join
        stages push the pruned projection to the client, so mid-chain CSJ
        uplinks stop carrying columns nothing later reads; the last stage's
        projection is shape-independent, which is what keeps every migration
        path's output identical.
        """
        order = shape.udf_order
        if self.output_columns is None:
            return [None] * len(order)

        def bare(name: str) -> str:
            return name.partition(".")[2] if "." in name else name

        # needed_after[i]: names needed by anything after stage i.
        running = set(self.output_columns) | {bare(name) for name in self.output_columns}
        needed_after: List[set] = [set()] * len(order)
        for position in range(len(order) - 1, -1, -1):
            needed_after[position] = set(running)
            stage = self._stage_by_name[order[position]]
            for column in stage.argument_columns:
                running.add(column)
                running.add(bare(column))
            for index in assignment[position]:
                for column in self.predicates[index].expression.columns():
                    running.add(column)
                    running.add(bare(column))

        projections: List[Optional[List[str]]] = []
        current = [column.qualified_name for column in self.child_schema.columns]
        for position, name in enumerate(order):
            current = current + [self._stage_by_name[name].result_column_name]
            if position == len(order) - 1:
                kept = list(self.output_columns)
            else:
                needed = needed_after[position]
                kept = [
                    column
                    for column in current
                    if column in needed or bare(column) in needed
                ]
            projections.append(kept)
            current = kept
        return projections

    def _account_segment(
        self,
        shape: PlanShape,
        units: List[Operator],
        stage_keys: List[Optional[str]],
        segment_rows: int,
    ) -> None:
        rows_in = segment_rows
        for name, unit, key in zip(shape.udf_order, units, stage_keys):
            rows_out = unit.rows_produced
            if key is not None:
                survived, processed = self._predicate_counts.get(key, (0, 0))
                self._predicate_counts[key] = (survived + rows_out, processed + rows_in)
            remote = _find_remote(unit)
            if remote is not None:
                self.peak_in_flight_batches = max(
                    self.peak_in_flight_batches, remote.peak_in_flight_batches
                )
                self.send_stall_seconds += remote.send_stall_seconds
                if remote.overlap_window_used is not None:
                    self.overlap_window_used = remote.overlap_window_used
            distinct = remote.distinct_argument_count if remote is not None else rows_in
            previous = self._udf_unit_counts.get(name, (0, 0, 0))
            self._udf_unit_counts[name] = (
                previous[0] + rows_in,
                previous[1] + rows_out,
                previous[2] + distinct,
            )
            rows_in = rows_out

    def _canonicalise(self, shape: PlanShape, batch: RowBatch) -> RowBatch:
        """Re-order a segment's output columns into the canonical schema."""
        if shape.udf_order == self._declared_order:
            return batch
        child_count = len(self.child_schema)
        positions = list(range(child_count)) + [
            child_count + shape.udf_order.index(name) for name in self._declared_order
        ]
        return batch.project(positions)

    # -- observation plumbing ----------------------------------------------------------

    def _precompute_suffixes(self, batch: RowBatch) -> None:
        """Suffix aggregates of the input (byte shape and per-stage distincts)."""
        count = len(batch)
        self._suffix_record_bytes = [0.0] * (count + 1)
        self._suffix_argument_bytes: Dict[str, List[float]] = {
            name: [0.0] * (count + 1) for name in self._declared_order
        }
        self._suffix_distinct: Dict[str, List[int]] = {
            name: [0] * (count + 1) for name in self._declared_order
        }
        stage_positions = {
            name: tuple(
                self.child_schema.index_of(column)
                for column in self._stage_by_name[name].argument_columns
            )
            for name in self._declared_order
        }
        record_sizes = batch.row_sizes(self.child_schema)
        stage_sizes = {
            name: batch.value_sizes(stage_positions[name])
            for name in self._declared_order
        }
        stage_tuples = {
            name: batch.key_tuples(stage_positions[name])
            for name in self._declared_order
        }
        seen: Dict[str, set] = {name: set() for name in self._declared_order}
        for position in range(count - 1, -1, -1):
            self._suffix_record_bytes[position] = (
                self._suffix_record_bytes[position + 1] + record_sizes[position]
            )
            for name in self._declared_order:
                seen[name].add(stage_tuples[name][position])
                self._suffix_argument_bytes[name][position] = (
                    self._suffix_argument_bytes[name][position + 1]
                    + stage_sizes[name][position]
                )
                self._suffix_distinct[name][position] = len(seen[name])

    def _observation(self, position: int) -> MigrationObservation:
        stats = self.context.channel_stats
        network = self.context.network
        client = self.context.client
        remaining = self.input_row_count - position

        downlink = AdaptiveStrategyOperator._bandwidth(
            stats.downlink.total_bytes,
            stats.downlink.busy_seconds,
            network.downlink_bandwidth if network else None,
        )
        uplink = AdaptiveStrategyOperator._bandwidth(
            stats.uplink.total_bytes,
            stats.uplink.busy_seconds,
            network.uplink_bandwidth if network else None,
        )

        seconds_per_call: Dict[str, float] = {}
        argument_bytes: Dict[str, float] = {}
        result_bytes: Dict[str, float] = {}
        distinct_fraction: Dict[str, float] = {}
        for name in self._declared_order:
            stage = self._stage_by_name[name]
            invocations = client.invocations_of(stage.udf.name)
            seconds_per_call[name] = (
                client.compute_seconds_of(stage.udf.name) / invocations
                if invocations > 0
                else stage.udf.cost_per_call_seconds
            )
            argument_bytes[name] = self._suffix_argument_bytes[name][position] / remaining
            result_bytes[name] = float(
                stage.udf.result_size_bytes
                if stage.udf.result_size_bytes is not None
                else 8
            )
            distinct_fraction[name] = self._suffix_distinct[name][position] / remaining

        return MigrationObservation(
            rows_processed=position,
            remaining_rows=remaining,
            remaining_record_bytes=self._suffix_record_bytes[position] / remaining,
            predicate_counts=dict(self._predicate_counts),
            stage_argument_bytes=argument_bytes,
            stage_result_bytes=result_bytes,
            stage_distinct_fraction=distinct_fraction,
            stage_seconds_per_call=seconds_per_call,
            downlink_bandwidth=downlink,
            uplink_bandwidth=uplink,
            latency=network.latency if network is not None else 0.0,
            batch_size=float(self.config.next_batch_size()),
        )

    # -- observer integration ----------------------------------------------------------

    @property
    def stage_views(self) -> List[_StageView]:
        """Per-stage observation proxies for the runtime observer."""
        views: List[_StageView] = []
        final_shape = self.reoptimizer.current_shape
        assignment = assign_predicates_to_stages(final_shape.udf_order, self.predicates)
        for name, indexes in zip(final_shape.udf_order, assignment):
            stage = self._stage_by_name[name]
            keys = [self.predicates[i].key for i in indexes]
            rows_in, rows_out, distinct = self._udf_unit_counts.get(name, (0, 0, 0))
            predicate_key: Optional[str] = None
            if len(keys) == 1:
                predicate_key = keys[0]
            elif keys:
                predicate_key = canonical_predicate_key(
                    "(" + " AND ".join(sorted(keys)) + ")"
                )
            if predicate_key:
                survived, processed = self._predicate_counts.get(
                    predicate_key, (rows_out, rows_in)
                )
                rows_in, rows_out = processed, survived
            views.append(
                _StageView(
                    udf=stage.udf,
                    input_row_count=rows_in,
                    output_row_count=rows_out,
                    distinct_argument_count=min(distinct, rows_in) if rows_in else distinct,
                    pushable_predicate=predicate_key,
                )
            )
        return views

    def describe(self) -> str:
        shapes = self.reoptimizer.shapes_used
        described = " => ".join(shape.describe() for shape in shapes) or "unbound"
        return f"{type(self).__name__}({described})"
