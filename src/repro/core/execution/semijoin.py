"""Semi-join execution of a client-site UDF (Sections 2.3.1 and 3.1.1).

Architecture (paper Figure 3): on the server a *sender* and a *receiver* run
concurrently, connected by a bounded buffer whose capacity is the pipeline
concurrency factor.

* The sender walks the input (optionally sorted and grouped on the argument
  columns), eliminates argument duplicates, ships only the argument columns
  of new argument tuples on the downlink, and enqueues every record on the
  buffer.
* The client evaluates the UDF on each received argument tuple and ships the
  bare result back on the uplink.
* The receiver dequeues records in order; for a record carrying a new
  argument tuple it waits for the corresponding result from the client (the
  two streams are merged positionally, i.e. a merge join on the sorted
  argument key); for a duplicate it reuses the cached result.  Only once a
  record's result is in hand is its pipeline slot released, so at most
  ``concurrency_factor`` argument tuples are in flight at any instant — a
  factor of 1 degenerates to tuple-at-a-time execution, exactly as in the
  paper.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.client.protocol import ArgumentBatch, RemoteCall, ResultBatch
from repro.core.concurrency import recommended_batched_concurrency_factor
from repro.core.execution.base import RemoteUdfOperator
from repro.network.message import MessageKind, batch_message, end_of_stream
from repro.network.resources import Store
from repro.relational.tuples import Row, RowBatch

#: Sentinel marking the end of the record stream between sender and receiver.
_DONE = object()


class SemiJoinSegmentState:
    """Duplicate-elimination state a semi-join carries across plan segments.

    Segmented (adaptive / migrating) executions run one plain semi-join
    operator per segment.  Without shared state each segment re-ships the
    argument tuples earlier segments already eliminated — the client's result
    cache still answers them without re-invoking the UDF, but the wire pays
    the argument and result bytes again and ``rows_transferred`` double
    counts.  One instance of this state per (UDF, query) makes the segment
    sequence byte-identical to a single unsegmented semi-join run:
    ``seen`` is the sender's already-shipped argument set, ``results`` the
    receiver's server-side result cache for those arguments.
    """

    __slots__ = ("seen", "results")

    def __init__(self) -> None:
        self.seen: set = set()
        self.results: Dict[Tuple[Any, ...], Any] = {}


class SemiJoinUdfOperator(RemoteUdfOperator):
    """Pipelined semi-join between the input relation and the virtual UDF table.

    ``carry_state`` (a :class:`SemiJoinSegmentState`) plugs in externally
    owned duplicate-elimination state, so segmented executions do not re-ship
    arguments an earlier segment already resolved; ``None`` keeps the
    operator self-contained.
    """

    def __init__(self, *args, carry_state: Optional[SemiJoinSegmentState] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.carry_state = carry_state

    def effective_concurrency_factor(self, sample_row: Optional[Row] = None) -> int:
        """The configured pipeline concurrency factor, or the analytic B·T choice.

        The analysis is batch-aware: with ``batch_size`` rows per message the
        per-tuple overhead share shrinks (raising throughput) but a tuple's
        traversal time includes its whole batch's serialisation, so the
        window must span at least two batches to keep the bottleneck busy.
        """
        if self.config.concurrency_factor is not None:
            return self.config.concurrency_factor
        if self.context.network is None or sample_row is None:
            return max(8, 2 * self.config.batch_size)  # safe default without a network
        arguments = self.argument_tuple(sample_row)
        request_bytes = self.argument_bytes(arguments)
        response_bytes = (
            self.udf.result_size_bytes
            if self.udf.result_size_bytes is not None
            else max(8, request_bytes)
        )
        return recommended_batched_concurrency_factor(
            self.context.network,
            request_payload_bytes=request_bytes,
            response_payload_bytes=response_bytes,
            client_seconds_per_tuple=self.udf.cost_per_call_seconds,
            batch_size=self.config.batch_size,
        )

    def _drive(self, batch: RowBatch):
        simulator = self.context.simulator
        channel = self.context.channel

        if self.config.sort_by_arguments:
            batch, arguments_list = self.sorted_batch_by_arguments(batch)
        else:
            arguments_list = self.argument_tuples(batch)
        sizer = self.argument_sizer(batch)

        factor = self.effective_concurrency_factor(batch[0] if len(batch) else None)
        # A batch only leaves the sender once it is full, so the pipeline must
        # admit at least one whole batch or the sender would block on a slot
        # while holding an unsent batch (deadlock).  An explicitly pinned
        # concurrency factor is otherwise respected as configured; the
        # analytic path already double-buffers (two batches) on its own.
        # Under adaptive control the window instead *tracks* the controller:
        # it starts double-buffered at the current batch size and grows with
        # it (see the sender), so a run converged at batch 8 is not simulated
        # with the buffering of the controller's maximum.
        adaptive = self.config.controller_for(self.udf.name) is not None
        if adaptive:
            factor = max(factor, 2 * self.next_batch_size())
        else:
            factor = max(factor, self.config.batch_size_for(self.udf.name))
        self.concurrency_factor_used = factor

        call = RemoteCall(
            udf_name=self.udf.name,
            argument_positions=tuple(range(len(self.argument_columns))),
        )
        # Records whose arguments have been shipped but whose results have not
        # yet been received occupy a slot here; capacity = concurrency factor.
        in_flight = Store(simulator, capacity=factor, name="semijoin.pipeline")
        # The record stream handed from sender to receiver (unbounded: records
        # are small server-side state, the pipeline is what is bounded).
        records = Store(simulator, name="semijoin.records")
        # The shared protocol's *batch*-level window, layered over the tuple
        # pipeline: historically the semi-join sender streams any batch the
        # pipeline admits, so the default is unbounded; an explicit
        # overlap_window (or its controller) bounds the argument batches
        # outstanding on the wire directly.
        window = self.make_window(default=None)

        eliminate = self.config.eliminate_duplicates

        carried = self.carry_state if eliminate else None

        def sender():
            seen: set = carried.seen if carried is not None else set()
            pending_batch: List[Tuple[Any, ...]] = []

            def flush():
                if not pending_batch:
                    return None
                message = batch_message(
                    MessageKind.UDF_ARGUMENTS,
                    ArgumentBatch(call=call, argument_tuples=list(pending_batch)),
                    payload_bytes=sizer(pending_batch),
                    row_count=len(pending_batch),
                    description=f"semijoin {self.udf.name} x{len(pending_batch)}",
                )
                pending_batch.clear()
                return message

            for arguments in arguments_list:
                is_new = True
                if eliminate:
                    is_new = arguments not in seen
                    if is_new:
                        seen.add(arguments)
                yield records.put((arguments, is_new))
                if is_new:
                    # Re-read the target at every batch boundary: an adaptive
                    # controller may have changed it since the last flush.
                    # The window must stay double-buffered at the current
                    # target *before* the put, or a grown batch could block
                    # on a slot while holding an unsent batch (deadlock).
                    target = self.next_batch_size()
                    if adaptive:
                        in_flight.grow_capacity(2 * target)
                    yield in_flight.put(arguments)
                    pending_batch.append(arguments)
                    if len(pending_batch) >= target:
                        self.refresh_window(window)
                        yield window.acquire()
                        yield channel.send_to_client(flush())
            message = flush()
            if message is not None:
                self.refresh_window(window)
                yield window.acquire()
                yield channel.send_to_client(message)
            yield records.put(_DONE)
            yield channel.send_to_client(end_of_stream())

        def receiver():
            results: List[Any] = []
            result_cache: Dict[Tuple[Any, ...], Any] = (
                carried.results if carried is not None else {}
            )
            pending_results: Deque[Any] = deque()
            distinct_arguments = set()

            while True:
                item = yield records.get()
                if item is _DONE:
                    break
                arguments, is_new = item
                distinct_arguments.add(arguments)
                if is_new:
                    while not pending_results:
                        reply = yield channel.receive_at_server()
                        self.check_reply(reply)
                        window.release()
                        result_batch: ResultBatch = reply.payload
                        pending_results.extend(result_batch.results)
                        self.observe_batch(len(result_batch.results))
                    result = pending_results.popleft()
                    result_cache[arguments] = result
                    yield in_flight.get()
                else:
                    result = result_cache[arguments]
                results.append(result)

            # Absorb the client's end-of-stream acknowledgement.
            yield channel.receive_at_server()
            self.distinct_argument_count = len(distinct_arguments)
            return results

        sender_process = simulator.process(sender(), name="semijoin.sender")
        receiver_process = simulator.process(receiver(), name="semijoin.receiver")
        # Wait for the receiver first: if the client reports a failure the
        # receiver raises immediately, even while the sender is still blocked
        # on a pipeline slot that will never be released.
        results = yield receiver_process
        yield sender_process
        self.peak_pipeline_occupancy = in_flight.peak_occupancy
        # The window may have grown with the controller; report what it ended at.
        self.concurrency_factor_used = int(in_flight.capacity)
        self.finish_window(window)
        # Results arrive in record order — the (possibly argument-sorted)
        # input order — so the output is the input batch plus one column.
        return self.extended_batch(batch, results)
