"""Common machinery for the remote UDF execution operators."""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

import math

from repro.errors import ExecutionError
from repro.client.udf import UdfDefinition
from repro.core.execution.context import RemoteExecutionContext
from repro.core.execution.overlap import InFlightWindow
from repro.core.strategies import StrategyConfig
from repro.network.message import Message, MessageKind
from repro.relational.columns import TypedColumn, build_typed_column
from repro.relational.operators.base import Operator
from repro.relational.operators.sort import _NullsFirstKey
from repro.relational.schema import Column, Schema
from repro.relational.tuples import (
    Row,
    RowBatch,
    concat_batches,
    row_size,
    rows_size,
    values_size,
)


class RemoteUdfOperator(Operator):
    """Base class for operators that apply a client-site UDF to their input.

    The child's batches are materialised into one columnar input batch, the
    strategy-specific coordination coroutine (``_drive``) is run on the
    shared simulator via the execution context, and the resulting batch is
    re-chunked to the parent.  The output schema is the child schema
    extended with one result column named after the UDF (``<name>_result``),
    unless a subclass projects it differently.
    """

    def __init__(
        self,
        child: Operator,
        udf: UdfDefinition,
        argument_columns: Sequence[str],
        context: RemoteExecutionContext,
        config: Optional[StrategyConfig] = None,
        result_column_name: Optional[str] = None,
    ) -> None:
        super().__init__([child])
        if not argument_columns:
            raise ExecutionError(f"UDF {udf.name!r} needs at least one argument column")
        self.udf = udf
        self.argument_columns = list(argument_columns)
        self.context = context
        self.config = config if config is not None else StrategyConfig()

        self.child_schema = child.output_schema()
        self._argument_positions: Tuple[int, ...] = tuple(
            self.child_schema.index_of(name) for name in self.argument_columns
        )
        self.result_column = Column(
            result_column_name or udf.result_column_name, udf.result_dtype
        )
        #: Child schema plus the UDF result column; the client sees this shape
        #: when predicates/projections are pushed to it.
        self.extended_schema: Schema = self.child_schema.append(self.result_column)
        self.schema = self.extended_schema

        # Instrumentation filled in by _drive implementations.
        self.input_row_count = 0
        self.output_row_count = 0
        self.distinct_argument_count = 0
        # Overlap instrumentation (the shared shipping protocol's window).
        self.peak_in_flight_batches = 0
        self.send_stall_seconds = 0.0
        self.overlap_window_used: Optional[int] = None

    # -- operator protocol ------------------------------------------------------------

    def _execute_batches(self, batch_size: int) -> Iterator[RowBatch]:
        batch = concat_batches(
            list(self.child().execute_batches(batch_size)),
            column_count=len(self.child_schema),
        )
        self.input_row_count = len(batch)
        controller = self.config.controller_for(self.udf.name)
        if controller is not None:
            # Start the controller's inter-arrival clock at this operator's
            # first simulated instant, so idle time between remote operators
            # is not charged to the first batch.
            controller.begin_operation(self.context.simulator.now)
        output: RowBatch = self.context.run_remote(
            self._drive(batch), name=self.describe()
        )
        self.output_row_count = len(output)
        for start in range(0, len(output), batch_size):
            yield output.slice(start, start + batch_size)

    def _drive(self, batch: RowBatch):
        """Strategy-specific coordination coroutine (a simulation process)."""
        raise NotImplementedError

    # -- adaptive batch sizing ---------------------------------------------------------

    def next_batch_size(self) -> int:
        """Rows the next network message should carry (adaptive-aware)."""
        return self.config.next_batch_size(self.udf.name)

    def observe_batch(self, rows: int) -> None:
        """Report ``rows`` acknowledged input rows to this UDF's controllers.

        Both adaptive knobs — the batch size and the in-flight window — feed
        on the same rows/second signal; each hill-climbs its own ladder.
        """
        now = self.context.simulator.now
        controller = self.config.controller_for(self.udf.name)
        if controller is not None:
            controller.observe_rows(rows, now)
        window_controller = self.config.overlap_controller_for(self.udf.name)
        if window_controller is not None:
            window_controller.observe_rows(rows, now)

    # -- overlapped shipping -----------------------------------------------------------

    def make_window(self, default: Optional[float] = None) -> InFlightWindow:
        """The in-flight batch window for this operation's request stream.

        ``default`` is the strategy's historical window when neither an
        explicit ``overlap_window`` nor a controller is configured: 1 for
        synchronous shipping (naive), ``None``/inf for free streaming
        (semi-join, client-site join).
        """
        target = self.config.next_overlap_window(self.udf.name)
        if target is None:
            target = default
        capacity = float(target) if target is not None else math.inf
        return InFlightWindow(
            self.context.simulator,
            capacity=capacity,
            name=f"{type(self).__name__}.window",
        )

    def refresh_window(self, window: InFlightWindow, floor: int = 1) -> None:
        """Re-read the window target at a batch boundary (adaptive-aware)."""
        target = self.config.next_overlap_window(self.udf.name)
        if target is not None:
            window.resize(max(floor, target))

    def finish_window(self, window: InFlightWindow) -> None:
        """Record the window's instrumentation after the operation drains."""
        self.peak_in_flight_batches = max(
            self.peak_in_flight_batches, window.peak_in_flight
        )
        self.send_stall_seconds += window.stall_seconds
        self.overlap_window_used = window.capacity_or_none

    # -- shared helpers ----------------------------------------------------------------

    def argument_tuple(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        """Extract the UDF's argument values from a child row."""
        return tuple(row[position] for position in self._argument_positions)

    def argument_tuples(self, batch: RowBatch) -> List[Tuple[Any, ...]]:
        """All argument tuples of the batch, straight off the column buffers."""
        return batch.key_tuples(self._argument_positions)

    def argument_bytes(self, arguments: Sequence[Any]) -> int:
        return values_size(arguments)

    def argument_sizer(self, batch: RowBatch):
        """A ``tuples -> payload bytes`` sizer specialised to this batch.

        When every argument column is typed and NULL-free, each tuple sizes
        to the same constant (the columns' widths), so a batch payload is
        one multiply; otherwise the sizer sums values exactly like
        :func:`values_size` per tuple.
        """
        if len(batch):
            columns = batch.columns
            widths = []
            for position in self._argument_positions:
                column = columns[position]
                if isinstance(column, TypedColumn) and column.null_count == 0:
                    widths.append(column.width)
                else:
                    widths.append(None)
            if widths and all(width is not None for width in widths):
                tuple_width = sum(widths)
                return lambda tuples: tuple_width * len(tuples)
        return lambda tuples: sum(values_size(arguments) for arguments in tuples)

    def record_bytes(self, row: Sequence[Any]) -> int:
        return row_size(row, self.child_schema)

    def records_size(self, rows: Sequence[Sequence[Any]]) -> int:
        """Wire size of many child rows, via the schema's cached size plan.

        Accepts a :class:`RowBatch` directly — its typed columns and size
        memo make repeated costing of the same payload O(1).
        """
        return rows_size(rows, self.child_schema)

    def sorted_by_arguments(self, rows: List[Row]) -> List[Row]:
        """Rows ordered (stably) by their argument tuples, grouping duplicates."""
        return sorted(rows, key=lambda row: _NullsFirstKey(self.argument_tuple(row)))

    def sorted_batch_by_arguments(
        self, batch: RowBatch
    ) -> Tuple[RowBatch, List[Tuple[Any, ...]]]:
        """``(batch stably sorted by argument tuples, the sorted tuples)``.

        Column-wise equivalent of :meth:`sorted_by_arguments`; an input
        already in argument order comes back unchanged (identity).
        """
        arguments = self.argument_tuples(batch)
        order = sorted(
            range(len(arguments)), key=lambda index: _NullsFirstKey(arguments[index])
        )
        if all(index == position for position, index in enumerate(order)):
            return batch, arguments
        return batch.take(order), [arguments[index] for index in order]

    def extended_batch(self, batch: RowBatch, results: List[Any]) -> RowBatch:
        """The input batch plus the UDF result column (typed when eligible)."""
        column = build_typed_column(results, self.udf.result_dtype) or results
        return RowBatch.from_columns(list(batch.columns) + [column], len(batch))

    def check_reply(self, message: Message) -> Message:
        """Raise :class:`ExecutionError` when the client reported a failure."""
        if message.kind is MessageKind.ERROR:
            raise ExecutionError(
                f"client-site execution of {self.udf.name!r} failed: {message.payload}"
            ) from (message.payload if isinstance(message.payload, BaseException) else None)
        return message

    def describe(self) -> str:
        return (
            f"{type(self).__name__}({self.udf.name} on "
            f"{', '.join(self.argument_columns)})"
        )
