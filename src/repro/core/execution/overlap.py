"""The shared overlapped request/response shipping protocol.

Every execution strategy ships its downlink payload as a stream of request
batches and consumes a stream of replies.  This module provides the one
mechanism they all share: a bounded *in-flight window* of request batches
outstanding on the wire.  The sender acquires a window slot before each
request message leaves the server and the receiver releases a slot per reply
it consumes, so up to ``capacity`` batches overlap — the server keeps
producing (and the links keep transferring) while earlier batches are still
at the client.  This generalises the semi-join's sender/receiver pipeline
(paper Figure 3 / Section 3.1.2) to all three strategies, with the window
counted in *batches* rather than tuples:

* a window of 1 is synchronous shipping — one request on the wire at a time,
  the paper's naive strategy;
* an unbounded window is free streaming — the client-site join's historical
  behaviour, where the sender runs ahead as fast as the downlink drains;
* anything between bounds the overlap, which is what mid-query adaptation
  (:class:`~repro.adaptive.controller.OverlapWindowController`) tunes.

The window is also the protocol's instrumentation point: it records the peak
number of batches actually in flight and the simulated time the sender spent
stalled waiting for a slot, which the executor surfaces on
:class:`~repro.server.metrics.ExecutionMetrics`.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional, Tuple

from repro.errors import SimulationError
from repro.network.events import Event


class InFlightWindow:
    """Bounds the number of request batches outstanding on the wire.

    A counting semaphore over simulated time: :meth:`acquire` returns an
    event that fires once a slot is free (immediately while fewer than
    ``capacity`` batches are in flight), :meth:`release` frees a slot.
    ``capacity`` may be ``math.inf`` for free streaming and may be *resized*
    mid-run by an adaptive controller — shrinking takes effect as in-flight
    batches drain, so nothing already on the wire is disturbed.
    """

    def __init__(
        self,
        simulator: "Simulator",  # noqa: F821
        capacity: float = math.inf,
        name: str = "overlap.window",
    ) -> None:
        if capacity < 1:
            raise SimulationError("InFlightWindow capacity must be at least 1")
        self.simulator = simulator
        self.capacity = capacity
        self.name = name
        self.in_flight = 0
        self._waiters: Deque[Tuple[Event, float]] = deque()
        # Instrumentation: the overlap the run actually reached, and the time
        # the sender spent blocked on a full window.
        self.peak_in_flight = 0
        self.stall_seconds = 0.0
        self.acquired_total = 0

    # -- operations -------------------------------------------------------------

    def acquire(self) -> Event:
        """An event that fires once one more batch may leave the server."""
        event = Event(self.simulator, name=f"{self.name}.acquire")
        self._waiters.append((event, self.simulator.now))
        self._dispatch()
        return event

    def release(self) -> None:
        """Mark one in-flight batch as answered, waking a blocked sender."""
        if self.in_flight > 0:
            self.in_flight -= 1
        self._dispatch()

    def resize(self, capacity: float) -> None:
        """Change the window size mid-run (never below 1).

        Growing admits blocked senders immediately; shrinking simply stops
        admitting new batches until the in-flight count drains below the new
        capacity.
        """
        self.capacity = max(1, capacity)
        self._dispatch()

    # -- introspection ----------------------------------------------------------

    @property
    def bounded(self) -> bool:
        return math.isfinite(self.capacity)

    @property
    def capacity_or_none(self) -> Optional[int]:
        """The capacity as an int, or ``None`` when unbounded."""
        return int(self.capacity) if self.bounded else None

    # -- internal ---------------------------------------------------------------

    def _dispatch(self) -> None:
        while self._waiters and self.in_flight < self.capacity:
            event, enqueued_at = self._waiters.popleft()
            self.in_flight += 1
            self.acquired_total += 1
            if self.in_flight > self.peak_in_flight:
                self.peak_in_flight = self.in_flight
            self.stall_seconds += self.simulator.now - enqueued_at
            event.succeed()

    def __repr__(self) -> str:
        capacity = f"{self.capacity:g}" if self.bounded else "inf"
        return (
            f"InFlightWindow({self.name!r}, in_flight={self.in_flight}, "
            f"capacity={capacity}, peak={self.peak_in_flight})"
        )
