"""Scatter-gather execution over sharded/replicated server sites.

:class:`ScatterGatherOperator` is the coordinator-side fan-out/merge point
of distributed execution: it hands a list of shard tasks to a runner (the
distribution engine's baton-driven worker pool), collects each site's
result stream, checks every stream against one canonical schema, and yields
the merged rows as ordinary batches.

The operator itself is deliberately execution-agnostic — it neither knows
about sites, channels, nor the baton protocol.  The runner callable owns
all of that; this operator is the relational-algebra face of the gather, so
coordinator output shaping (DISTINCT / ORDER BY / LIMIT over the *merged*
stream) stacks on top of it like on any other operator.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.relational.operators.base import Operator
from repro.relational.schema import Schema
from repro.relational.tuples import Row, RowBatch


class ShardResult:
    """One shard task's contribution to the gathered result."""

    def __init__(
        self,
        label: str,
        schema: Schema,
        rows: Sequence[Row],
        site: Optional[str] = None,
    ) -> None:
        self.label = label
        self.schema = schema
        self.rows = list(rows)
        #: The server site that ultimately produced the rows (after any
        #: mid-query migration), for explain output and tests.
        self.site = site

    def __repr__(self) -> str:
        return f"ShardResult({self.label!r}, rows={len(self.rows)}, site={self.site!r})"


class ScatterGatherOperator(Operator):
    """Fan a query out over shard tasks and merge the result streams.

    ``runner`` is called once with ``tasks`` and must return an iterable of
    :class:`ShardResult`, one per task, in any order.  ``schema`` is the
    canonical output schema every stream must match (by column name — sites
    may qualify differently, so bare names are compared); a mismatch is a
    protocol error, not data, and raises :class:`ExecutionError`.
    """

    def __init__(
        self,
        schema: Schema,
        tasks: Sequence[Any],
        runner: Callable[[Sequence[Any]], Sequence[ShardResult]],
        label: str = "scatter-gather",
    ) -> None:
        super().__init__()
        self.schema = schema
        self.tasks = list(tasks)
        self.runner = runner
        self.label = label
        #: Populated by execution: the per-shard results, in gather order.
        self.shard_results: List[ShardResult] = []
        self.rows_gathered = 0

    # -- execution --------------------------------------------------------------------

    def _execute_batches(self, batch_size: int) -> Iterator[RowBatch]:
        results = list(self.runner(self.tasks))
        self.shard_results = results
        canonical = self._bare_names(self.schema)
        pending: List[Row] = []
        for result in results:
            produced = self._bare_names(result.schema)
            if produced != canonical:
                raise ExecutionError(
                    f"shard {result.label!r} returned schema {produced} "
                    f"but the gather expects {canonical}"
                )
            for row in result.rows:
                pending.append(row)
                self.rows_gathered += 1
                if len(pending) >= batch_size:
                    yield RowBatch(pending)
                    pending = []
        if pending:
            yield RowBatch(pending)

    @staticmethod
    def _bare_names(schema: Schema) -> Tuple[str, ...]:
        return tuple(
            name.partition(".")[2] if "." in name else name
            for name in schema.qualified_names()
        )

    # -- introspection ----------------------------------------------------------------

    @property
    def sites_used(self) -> Tuple[str, ...]:
        """Distinct sites that produced rows, in gather order."""
        seen: List[str] = []
        for result in self.shard_results:
            if result.site is not None and result.site not in seen:
                seen.append(result.site)
        return tuple(seen)

    def describe(self) -> str:
        return f"ScatterGather({self.label}, tasks={len(self.tasks)})"
