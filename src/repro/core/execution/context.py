"""Shared execution context for remote (client-site) operators."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import ExecutionError
from repro.client.registry import UdfRegistry
from repro.client.runtime import ClientRuntime
from repro.network.channel import Channel
from repro.network.simulator import Simulator
from repro.network.stats import ChannelStats
from repro.network.topology import NetworkConfig


class RemoteExecutionContext:
    """Bundles the simulator, the client/server channel, and the client runtime.

    One context corresponds to one client connection.  Remote operators use
    :meth:`run_remote` to drive a coordination coroutine (their sender /
    receiver logic) together with the client's serve loop until both finish;
    simulated time accumulates across successive remote operations on the
    same context, so a whole query's elapsed time can be read from
    :attr:`elapsed_seconds` afterwards.
    """

    def __init__(
        self,
        simulator: Simulator,
        channel: Channel,
        client: ClientRuntime,
        network: Optional[NetworkConfig] = None,
    ) -> None:
        self.simulator = simulator
        self.channel = channel
        self.client = client
        self.network = network
        self.remote_operations = 0

    # -- construction ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        network: NetworkConfig,
        registry: Optional[UdfRegistry] = None,
        client: Optional[ClientRuntime] = None,
        channel_name: str = "channel",
    ) -> "RemoteExecutionContext":
        """Build a fresh simulator + channel + client runtime for ``network``."""
        simulator = Simulator()
        channel = network.build_channel(simulator, name=channel_name)
        if client is None:
            client = ClientRuntime(registry=registry)
        return cls(simulator, channel, client, network=network)

    # -- execution ---------------------------------------------------------------------

    def run_remote(self, coordinator: Generator, name: str = "remote-operation") -> Any:
        """Run ``coordinator`` together with the client serve loop to completion.

        Returns the coordinator's return value.  Raises
        :class:`~repro.errors.ExecutionError` if either side deadlocks or the
        coordinator fails.
        """
        self.remote_operations += 1
        return self.run_exchange(coordinator, name=name)

    def run_exchange(self, coordinator: Generator, name: str = "remote-operation") -> Any:
        """Drive one coordinator/serve-loop exchange to completion.

        Result delivery reuses it too, so *all* exchange driving funnels
        through here; :meth:`_drive_exchange` is the part a
        shared-simulation context (multi-tenancy) overrides — instead of
        running a private simulator to quiescence it parks the calling
        worker on the coordinator process and lets the traffic driver
        interleave every session's events on one clock.
        """
        serve_process = self.client.start(self.simulator, self.channel)
        coordinator_process = self.simulator.process(coordinator, name=name)
        self._drive_exchange(coordinator_process)

        if not coordinator_process.triggered:
            raise ExecutionError(
                f"remote operation {name!r} did not complete: the pipeline deadlocked "
                f"(client served {self.client.messages_handled} messages)"
            )
        if coordinator_process._exception is not None:
            exception = coordinator_process._exception
            if isinstance(exception, ExecutionError):
                raise exception
            raise ExecutionError(f"remote operation {name!r} failed: {exception}") from exception
        if serve_process.triggered and serve_process._exception is not None:
            raise ExecutionError(
                f"client runtime failed during {name!r}: {serve_process._exception}"
            ) from serve_process._exception
        return coordinator_process.value

    def _drive_exchange(self, coordinator_process: Any) -> None:
        """Advance simulated time until the exchange settles.

        The private-context default simply runs the simulator dry (this
        context owns it).  Shared-simulation contexts override this to yield
        control to the multi-tenant driver instead.
        """
        self.simulator.run()

    # -- introspection -----------------------------------------------------------------

    @property
    def elapsed_seconds(self) -> float:
        """Total simulated time elapsed on this connection so far."""
        return self.simulator.now

    @property
    def channel_stats(self) -> ChannelStats:
        return self.channel.stats

    @property
    def downlink_bytes(self) -> int:
        return self.channel.downlink.bytes_transferred

    @property
    def uplink_bytes(self) -> int:
        return self.channel.uplink.bytes_transferred

    def __repr__(self) -> str:
        return (
            f"RemoteExecutionContext(elapsed={self.elapsed_seconds:.3f}s, "
            f"down={self.downlink_bytes}B, up={self.uplink_bytes}B)"
        )
