"""Index-aware access-path operators: index scans and index nested-loop joins.

Both operators read the heap through the same :class:`~repro.storage.buffer.
BufferManager` the sequential scan uses, so their page traffic lands in the
identical hit/miss/eviction counters — what the benchmarks compare.  They
additionally count their own probe traffic (``index_lookups`` /
``index_pages_read``), which the executor sums into
:class:`~repro.server.metrics.ExecutionMetrics`.

Correctness notes:

* An :class:`IndexScanOperator` may over-approximate the predicate (a hash
  index normalises numeric keys to float, so two huge integers rounding to
  the same float collide); the planner therefore always keeps the original
  :class:`~repro.relational.operators.filter.Filter` above it.  The filter is
  marked ``observe_selectivity = False`` so the adaptive observer does not
  record the *residual* selectivity (≈1.0) under the predicate's key and
  poison later estimates.
* An :class:`IndexNestedLoopJoinOperator` re-checks key equality on the
  fetched inner row, so probe false positives never surface.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.relational.operators.base import Operator
from repro.relational.predicates import IndexCondition
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.tuples import Row, RowBatch
from repro.storage.record import RecordId


class IndexScanOperator(Operator):
    """Fetches the rows matching one column-vs-literal conjunct via an index.

    Equality conditions probe point lookups (B-tree or hash); range
    conditions walk the B-tree's leaf chain between the bounds.  Matching
    RIDs are fetched from the slotted-page heap through the buffer pool and
    emitted as typed columnar batches, so everything downstream composes
    exactly as over a :class:`~repro.relational.operators.scan.TableScan`.
    """

    def __init__(
        self,
        table: Table,
        index: object,
        condition: IndexCondition,
        alias: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.table = table
        self.alias = alias or table.name
        self.index = index
        self.condition = condition
        base = Schema(column.with_table(None) for column in table.schema.columns)
        self.schema = base.qualify(self.alias)
        #: Probe instrumentation the executor sums into the query metrics.
        self.index_lookups = 0
        self.index_pages_read = 0

    def _matching_rids(self) -> List[RecordId]:
        index = self.index
        condition = self.condition
        before = index.pages_read
        self.index_lookups += 1
        if condition.is_equality:
            rids = list(index.search_eq(condition.value))
        elif condition.operator in ("<", "<="):
            rids = [
                rid
                for _key, rid in index.search_range(
                    None, condition.value, include_high=condition.operator == "<="
                )
            ]
        else:
            rids = [
                rid
                for _key, rid in index.search_range(
                    condition.value, None, include_low=condition.operator == ">="
                )
            ]
        self.index_pages_read += index.pages_read - before
        return rids

    def _execute_batches(self, batch_size: int) -> Iterator[RowBatch]:
        storage = self.table.storage
        rows = [Row(storage.fetch_row(rid)) for rid in self._matching_rids()]
        batch = RowBatch(rows).ensure_typed(self.schema)
        for start in range(0, len(batch), batch_size):
            yield batch.slice(start, start + batch_size)

    def describe(self) -> str:
        name = getattr(getattr(self.index, "definition", None), "name", "?")
        condition = f"{self.condition.column} {self.condition.operator} {self.condition.value!r}"
        return f"IndexScan({self.table.name} AS {self.alias} via {name}: {condition})"


class IndexNestedLoopJoinOperator(Operator):
    """Joins by probing the inner table's index once per outer row.

    The inner side is never fully scanned: each outer row's join-key value is
    looked up in the index and only the matching heap rows are fetched.  The
    output schema is the concatenation ``outer ++ inner`` — identical to the
    hash/nested-loop joins it replaces, so the rest of the plan is unchanged.
    """

    def __init__(
        self,
        outer: Operator,
        inner_table: Table,
        index: object,
        outer_column: str,
        alias: Optional[str] = None,
    ) -> None:
        super().__init__([outer])
        self.table = inner_table
        self.alias = alias or inner_table.name
        self.index = index
        self.outer_column = outer_column
        base = Schema(column.with_table(None) for column in inner_table.schema.columns)
        self.inner_schema = base.qualify(self.alias)
        self.schema = outer.output_schema().concat(self.inner_schema)
        self._key_position = outer.output_schema().index_of(outer_column)
        inner_column = index.definition.column
        self._inner_position = self.inner_schema.index_of(inner_column)
        #: Equi-join instrumentation for observed-selectivity feedback would
        #: be misleading here (no hash-join counters exist), so only the
        #: probe counters are exported.
        self.index_lookups = 0
        self.index_pages_read = 0

    def _execute(self) -> Iterator[Row]:
        storage = self.table.storage
        index = self.index
        position = self._key_position
        inner_position = self._inner_position
        for outer_row in self.child().execute():
            key = outer_row[position]
            if key is None:
                continue  # NULL never equi-joins (three-valued logic)
            before = index.pages_read
            self.index_lookups += 1
            rids = index.search_eq(key)
            self.index_pages_read += index.pages_read - before
            for rid in rids:
                values = storage.fetch_row(rid)
                # Re-check equality: hash probes normalise numeric keys and
                # may collide two huge integers onto one float.
                if values[inner_position] == key:
                    yield outer_row.concat(Row(values))

    def describe(self) -> str:
        name = getattr(getattr(self.index, "definition", None), "name", "?")
        return (
            f"IndexNestedLoopJoin({self.table.name} AS {self.alias} via {name}, "
            f"probe {self.outer_column})"
        )
