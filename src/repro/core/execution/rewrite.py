"""Expression rewrites and operator construction helpers.

When a query predicate mentions a client-site UDF — e.g.
``ClientAnalysis(S.Quotes) > 500`` — the execution operators materialise the
UDF's value as a *result column* of the extended schema.  Predicates that are
applied after (or pushed alongside) the UDF must therefore be rewritten to
refer to that column instead of re-invoking the function.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.errors import ExecutionError
from repro.client.udf import UdfDefinition
from repro.core.execution.clientjoin import ClientSiteJoinOperator
from repro.core.execution.context import RemoteExecutionContext
from repro.core.execution.naive import NaiveUdfOperator
from repro.core.execution.semijoin import SemiJoinUdfOperator
from repro.core.strategies import ExecutionStrategy, StrategyConfig
from repro.relational.expressions import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    Literal,
)
from repro.relational.operators.base import Operator


def replace_udf_calls_with_columns(
    expression: Expression, mapping: Dict[str, str]
) -> Expression:
    """Return a copy of ``expression`` with UDF calls replaced by column refs.

    ``mapping`` maps lower-cased UDF names to the result-column names that
    hold their values in the extended schema.  Calls to functions not in the
    mapping are preserved (their arguments are still rewritten recursively).
    """
    if isinstance(expression, FunctionCall):
        replacement = mapping.get(expression.name.lower())
        if replacement is not None:
            return ColumnRef(replacement)
        return FunctionCall(
            expression.name,
            [replace_udf_calls_with_columns(argument, mapping) for argument in expression.arguments],
        )
    if isinstance(expression, Comparison):
        return Comparison(
            expression.operator,
            replace_udf_calls_with_columns(expression.left, mapping),
            replace_udf_calls_with_columns(expression.right, mapping),
        )
    if isinstance(expression, Arithmetic):
        return Arithmetic(
            expression.operator,
            replace_udf_calls_with_columns(expression.left, mapping),
            replace_udf_calls_with_columns(expression.right, mapping),
        )
    if isinstance(expression, BooleanOp):
        return BooleanOp(
            expression.operator,
            [replace_udf_calls_with_columns(operand, mapping) for operand in expression.operands],
        )
    if isinstance(expression, (ColumnRef, Literal)):
        return expression
    raise ExecutionError(f"cannot rewrite expression node {type(expression).__name__}")


def build_operator(
    child: Operator,
    udf: UdfDefinition,
    argument_columns: Sequence[str],
    context: RemoteExecutionContext,
    config: StrategyConfig,
    pushable_predicate: Optional[Expression] = None,
    output_columns: Optional[Sequence[str]] = None,
    result_column_name: Optional[str] = None,
    semi_join_state=None,
) -> Operator:
    """Instantiate the execution operator named by ``config.strategy``.

    For the naive and semi-join strategies, pushable predicates and
    projections cannot run at the client; when supplied they are applied on
    the server by wrapping the operator in Filter/Project operators, so every
    strategy produces identical rows for the same inputs.

    A config carrying a :class:`~repro.adaptive.reoptimizer.ReOptimizer`
    gets the *plan-migrating* executor: the UDF runs in segments and the
    whole remaining plan shape (strategy here; with several UDFs, their
    order too) may be re-optimized at segment boundaries.  A config carrying
    a :class:`~repro.adaptive.switcher.SwitchPolicy` gets the mid-query
    strategy-switching executor instead: ``config.strategy`` is then the
    *initial* strategy, and the operator may hand the unprocessed tail of
    the input to a different strategy at segment boundaries.

    ``semi_join_state`` (a
    :class:`~repro.core.execution.semijoin.SemiJoinSegmentState`) carries
    duplicate-elimination state across the segments of an adaptive
    execution, so later segments never re-ship resolved arguments.
    """
    from repro.relational.operators.filter import Filter
    from repro.relational.operators.project import Project

    if config.reoptimizer is not None:
        # Imported lazily: the migration executor builds plain per-segment
        # operators through this very function.
        from repro.core.execution.adaptive import (
            MigrationPredicate,
            MigrationStage,
            PlanMigrationOperator,
        )

        stage = MigrationStage(
            udf=udf,
            argument_columns=tuple(argument_columns),
            result_column_name=result_column_name or udf.result_column_name,
            strategy=config.strategy,
        )
        predicates = []
        if pushable_predicate is not None:
            predicates.append(
                MigrationPredicate(
                    expression=pushable_predicate,
                    udf_names=frozenset({udf.name.lower()}),
                    declared_selectivity=udf.selectivity,
                )
            )
        return PlanMigrationOperator(
            child,
            [stage],
            context,
            config=config,
            predicates=predicates,
            output_columns=output_columns,
            reoptimizer=config.reoptimizer,
        )

    if config.switch_policy is not None:
        # Imported lazily: the adaptive executor builds plain per-segment
        # operators through this very function.
        from repro.core.execution.adaptive import AdaptiveStrategyOperator

        return AdaptiveStrategyOperator(
            child,
            udf,
            argument_columns,
            context,
            config=config,
            pushable_predicate=pushable_predicate,
            output_columns=output_columns,
            result_column_name=result_column_name,
        )

    if config.strategy is ExecutionStrategy.CLIENT_SITE_JOIN:
        return ClientSiteJoinOperator(
            child,
            udf,
            argument_columns,
            context,
            config=config,
            pushable_predicate=pushable_predicate,
            output_columns=output_columns,
            result_column_name=result_column_name,
        )

    operator_class = (
        NaiveUdfOperator if config.strategy is ExecutionStrategy.NAIVE else SemiJoinUdfOperator
    )
    operator: Operator = operator_class(
        child,
        udf,
        argument_columns,
        context,
        config=config,
        result_column_name=result_column_name,
        carry_state=semi_join_state,
    )
    if pushable_predicate is not None:
        operator = Filter(operator, pushable_predicate)
    if output_columns is not None:
        operator = Project(operator, list(output_columns))
    return operator
