"""Naive blocking execution of a client-site UDF (Section 2.1).

This is the paper's strawman: treating the client-site UDF like an expensive
server-site UDF that happens to make a remote call.  The server ships a batch
of argument tuples (``StrategyConfig.batch_size``; the paper's setup is a
batch of one), blocks until the client returns the results, and only then
proceeds — so the full network round-trip latency is paid per batch and the
pipeline formed by downlink, client, and uplink is never more than one batch
deep.  With ``batch_size=1`` the wire behaviour (one synchronous round trip
per tuple) matches the paper exactly.

The only optimisation kept from the server-site world is [HN97]-style result
caching of duplicate argument tuples on the server, controlled by
``StrategyConfig.server_result_cache``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.client.protocol import ArgumentBatch, RemoteCall, ResultBatch
from repro.core.execution.base import RemoteUdfOperator
from repro.network.message import MessageKind, end_of_stream
from repro.relational.tuples import Row


class NaiveUdfOperator(RemoteUdfOperator):
    """One synchronous client round trip per batch of input tuples.

    ``carry_state`` (a :class:`~repro.core.execution.semijoin.SemiJoinSegmentState`)
    shares the server result cache across the segments of an adaptive
    execution, so a later segment does not re-ship arguments an earlier
    naive segment already resolved.
    """

    def __init__(self, *args, carry_state=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.carry_state = carry_state

    def _drive(self, rows: List[Row]):
        channel = self.context.channel
        call = RemoteCall(
            udf_name=self.udf.name,
            argument_positions=tuple(range(len(self.argument_columns))),
        )
        use_cache = self.config.server_result_cache
        carried = self.carry_state if use_cache else None
        cache: Dict[Tuple[Any, ...], Any] = (
            carried.results if carried is not None else {}
        )
        output: List[Row] = []
        distinct_arguments = set()

        # Rows awaiting the next flush, in arrival order.  ``index`` points
        # into the pending argument batch, or is None for rows resolved from
        # the server cache.
        pending_rows: List[Tuple[Row, Tuple[Any, ...], Optional[int]]] = []
        pending_arguments: List[Tuple[Any, ...]] = []
        pending_index: Dict[Tuple[Any, ...], int] = {}

        def flush():
            results: List[Any] = []
            flushed_rows = len(pending_rows)
            if pending_arguments:
                yield channel.send_batch_to_client(
                    MessageKind.UDF_ARGUMENTS,
                    ArgumentBatch(call=call, argument_tuples=list(pending_arguments)),
                    payload_bytes=sum(self.argument_bytes(args) for args in pending_arguments),
                    row_count=len(pending_arguments),
                    description=f"naive {self.udf.name} x{len(pending_arguments)}",
                )
                reply = yield channel.receive_at_server()
                self.check_reply(reply)
                batch: ResultBatch = reply.payload
                results = batch.results
                self.observe_batch(flushed_rows)
            for row, arguments, index in pending_rows:
                result = cache[arguments] if index is None else results[index]
                if use_cache:
                    cache[arguments] = result
                    if carried is not None:
                        # Mark the argument resolved for *other* strategies
                        # sharing this state: a later semi-join segment must
                        # treat it as already shipped (its receiver answers
                        # from carried.results).
                        carried.seen.add(arguments)
                output.append(row.append(result))
            pending_rows.clear()
            pending_arguments.clear()
            pending_index.clear()

        for row in rows:
            arguments = self.argument_tuple(row)
            distinct_arguments.add(arguments)
            if use_cache and arguments in cache:
                pending_rows.append((row, arguments, None))
                continue
            if use_cache and arguments in pending_index:
                pending_rows.append((row, arguments, pending_index[arguments]))
                continue
            index = len(pending_arguments)
            pending_arguments.append(arguments)
            if use_cache:
                pending_index[arguments] = index
            pending_rows.append((row, arguments, index))
            # Re-read the target each time: an adaptive controller may have
            # changed the batch size since the last round trip.
            if len(pending_arguments) >= self.next_batch_size():
                yield from flush()
        yield from flush()

        # Terminate the client's serve loop and absorb its acknowledgement.
        yield channel.send_to_client(end_of_stream())
        yield channel.receive_at_server()

        self.distinct_argument_count = len(distinct_arguments)
        return output
