"""Naive execution of a client-site UDF (Section 2.1), on the overlapped wire.

This is the paper's strawman: treating the client-site UDF like an expensive
server-site UDF that happens to make a remote call.  The server ships a batch
of argument tuples (``StrategyConfig.batch_size``; the paper's setup is a
batch of one) and needs the client's reply before the corresponding rows can
proceed.  Shipping now runs over the shared overlapped request/response
protocol (:mod:`repro.core.execution.overlap`): with the default in-flight
window of 1 the wire behaviour is the paper's — one synchronous round trip
per batch, the full network latency paid every time, the pipeline never more
than one batch deep.  A wider window (``StrategyConfig.overlap_window``, or
the adaptive :class:`~repro.adaptive.controller.OverlapWindowController`)
keeps up to W batches outstanding, overlapping client computation with
network transfer exactly as the Figure 6 concurrency analysis prescribes —
the wire carries the same messages and bytes, just without the per-batch
stalls.

The only optimisation kept from the server-site world is [HN97]-style result
caching of duplicate argument tuples on the server, controlled by
``StrategyConfig.server_result_cache``.  Duplicate decisions are made at
*enqueue* time against everything already sent or in flight, so the wire
trace is identical whatever the window is.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.client.protocol import ArgumentBatch, RemoteCall, ResultBatch
from repro.core.execution.base import RemoteUdfOperator
from repro.network.message import MessageKind, end_of_stream, is_end_of_stream
from repro.relational.tuples import RowBatch


class NaiveUdfOperator(RemoteUdfOperator):
    """One client round trip per batch of input tuples, up to W in flight.

    ``carry_state`` (a :class:`~repro.core.execution.semijoin.SemiJoinSegmentState`)
    shares the server result cache across the segments of an adaptive
    execution, so a later segment does not re-ship arguments an earlier
    naive segment already resolved.
    """

    def __init__(self, *args, carry_state=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.carry_state = carry_state

    def _drive(self, batch: RowBatch):
        simulator = self.context.simulator
        channel = self.context.channel
        call = RemoteCall(
            udf_name=self.udf.name,
            argument_positions=tuple(range(len(self.argument_columns))),
        )
        use_cache = self.config.server_result_cache
        carried = self.carry_state if use_cache else None
        cache: Dict[Tuple[Any, ...], Any] = (
            carried.results if carried is not None else {}
        )
        # The naive strategy's historical wire behaviour is synchronous:
        # window 1 unless the config (or its controller) says otherwise.
        window = self.make_window(default=1)

        arguments_list = self.argument_tuples(batch)
        sizer = self.argument_sizer(batch)

        distinct_arguments = set()
        # How each input row resolves, in input order: ``(arguments,
        # batch_id, offset)`` — ``batch_id`` None for rows answered from the
        # server cache at enqueue time, else the index of the request batch
        # (and the offset within it) that carries the row's arguments.
        resolution: List[Tuple[Tuple[Any, ...], Optional[int], Optional[int]]] = []
        # One slot per request batch, filled by the receiver in FIFO order.
        batch_results: List[Optional[List[Any]]] = []
        # Input rows acknowledged by each reply (cache-resolved rows between
        # flushes count toward the batch that follows them), FIFO.
        acknowledged: Deque[int] = deque()

        def sender():
            pending: List[Tuple[Any, ...]] = []
            # Arguments already sent (or pending) resolve to the batch that
            # carries them; like the cache, only consulted when caching is on.
            shipped_index: Dict[Tuple[Any, ...], Tuple[int, int]] = {}
            covered = 0
            next_batch_id = 0
            for arguments in arguments_list:
                distinct_arguments.add(arguments)
                covered += 1
                if use_cache:
                    if arguments in cache:
                        resolution.append((arguments, None, None))
                        continue
                    shipped = shipped_index.get(arguments)
                    if shipped is not None:
                        resolution.append((arguments,) + shipped)
                        continue
                offset = len(pending)
                pending.append(arguments)
                if use_cache:
                    shipped_index[arguments] = (next_batch_id, offset)
                resolution.append((arguments, next_batch_id, offset))
                # Re-read the targets each time: adaptive controllers may
                # have moved the batch size or the window since the last send.
                if len(pending) >= self.next_batch_size():
                    self.refresh_window(window)
                    yield window.acquire()
                    yield channel.send_batch_to_client(
                        MessageKind.UDF_ARGUMENTS,
                        ArgumentBatch(call=call, argument_tuples=list(pending)),
                        payload_bytes=sizer(pending),
                        row_count=len(pending),
                        description=f"naive {self.udf.name} x{len(pending)}",
                    )
                    acknowledged.append(covered)
                    covered = 0
                    batch_results.append(None)
                    next_batch_id += 1
                    pending.clear()
            if pending:
                self.refresh_window(window)
                yield window.acquire()
                yield channel.send_batch_to_client(
                    MessageKind.UDF_ARGUMENTS,
                    ArgumentBatch(call=call, argument_tuples=list(pending)),
                    payload_bytes=sizer(pending),
                    row_count=len(pending),
                    description=f"naive {self.udf.name} x{len(pending)}",
                )
                acknowledged.append(covered)
                batch_results.append(None)
                pending.clear()
            yield channel.send_to_client(end_of_stream())

        def receiver():
            received = 0
            while True:
                reply = yield channel.receive_at_server()
                if is_end_of_stream(reply):
                    return
                self.check_reply(reply)
                window.release()
                batch: ResultBatch = reply.payload
                batch_results[received] = batch.results
                received += 1
                if acknowledged:
                    self.observe_batch(acknowledged.popleft())

        sender_process = simulator.process(sender(), name="naive.sender")
        receiver_process = simulator.process(receiver(), name="naive.receiver")
        # Wait for the receiver first: a client failure surfaces there even
        # while the sender is still blocked on a window slot.
        yield receiver_process
        yield sender_process
        self.finish_window(window)

        results: List[Any] = []
        for arguments, batch_id, offset in resolution:
            if batch_id is None:
                result = cache[arguments]
            else:
                result = batch_results[batch_id][offset]
            if use_cache:
                cache[arguments] = result
                if carried is not None:
                    # Mark the argument resolved for *other* strategies
                    # sharing this state: a later semi-join segment must
                    # treat it as already shipped (its receiver answers
                    # from carried.results).
                    carried.seen.add(arguments)
            results.append(result)

        self.distinct_argument_count = len(distinct_arguments)
        return self.extended_batch(batch, results)
