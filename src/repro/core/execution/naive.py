"""Naive tuple-at-a-time execution of a client-site UDF (Section 2.1).

This is the paper's strawman: treating the client-site UDF like an expensive
server-site UDF that happens to make a remote call.  For each input tuple the
server ships the argument values, blocks until the client returns the result,
and only then proceeds to the next tuple — so the full network round-trip
latency is paid per tuple and the pipeline formed by downlink, client, and
uplink is never more than one tuple deep.

The only optimisation kept from the server-site world is [HN97]-style result
caching of duplicate argument tuples on the server, controlled by
``StrategyConfig.server_result_cache``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.client.protocol import ArgumentBatch, RemoteCall, ResultBatch
from repro.core.execution.base import RemoteUdfOperator
from repro.network.message import Message, MessageKind, end_of_stream
from repro.relational.tuples import Row


class NaiveUdfOperator(RemoteUdfOperator):
    """One synchronous client round trip per input tuple."""

    def _drive(self, rows: List[Row]):
        channel = self.context.channel
        call = RemoteCall(
            udf_name=self.udf.name,
            argument_positions=tuple(range(len(self.argument_columns))),
        )
        cache: Dict[Tuple[Any, ...], Any] = {}
        use_cache = self.config.server_result_cache
        output: List[Row] = []
        distinct_arguments = set()

        for row in rows:
            arguments = self.argument_tuple(row)
            distinct_arguments.add(arguments)
            if use_cache and arguments in cache:
                output.append(row.append(cache[arguments]))
                continue

            request = Message(
                kind=MessageKind.UDF_ARGUMENTS,
                payload=ArgumentBatch(call=call, argument_tuples=[arguments]),
                payload_bytes=self.argument_bytes(arguments),
                description=f"naive {self.udf.name}",
            )
            yield channel.send_to_client(request)
            reply = yield channel.receive_at_server()
            self.check_reply(reply)
            batch: ResultBatch = reply.payload
            result = batch.results[0]
            if use_cache:
                cache[arguments] = result
            output.append(row.append(result))

        # Terminate the client's serve loop and absorb its acknowledgement.
        yield channel.send_to_client(end_of_stream())
        yield channel.receive_at_server()

        self.distinct_argument_count = len(distinct_arguments)
        return output
