"""The paper's bandwidth cost model (Section 3.2).

The model characterises a single client-site UDF application over a relation
by seven parameters:

====  =========================================================================
A     size of the argument columns / total size of an input record
D     number of distinct argument tuples / cardinality of the input relation
S     selectivity of the pushable predicates
P     size of the projected output record / size of the output record before
      pushable projections (column selectivity of the projections)
I     size of one input record, in bytes
R     size of one UDF result, in bytes
N     network asymmetry: downlink bandwidth / uplink bandwidth
====  =========================================================================

Per-tuple bytes shipped (paper, Section 3.2.1):

* semi-join downlink:          ``D * A * I``
* semi-join uplink (weighted): ``N * D * R``
* client-site join downlink:   ``I``
* client-site join uplink:     ``N * (I + R) * P * S``

The cost of a strategy is the **maximum** of its two per-link costs — the
link closer to saturation determines the turnaround of the join — and the
preferred strategy is the one with the smaller bottleneck cost.  The module
also exposes the analytic crossover points used to check the figures: the
selectivity at which a client-site join's uplink starts to dominate its
downlink (the "knee" of Figure 8), and the result size / selectivity at which
the two strategies break even (the 1.0-crossings of Figures 8-10).

**Batch extension.**  The paper ships one message per tuple; the batched
executor ships ``batch_size`` rows per message, so each row additionally
carries an amortised share ``message_overhead_bytes / batch_size`` of the
fixed per-message framing cost on every link it crosses.  The extension is
controlled by two extra parameters (``message_overhead_bytes``, default 0,
and ``batch_size``, default 1); with the defaults every formula reduces to
the paper's pure bandwidth model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.core.strategies import ExecutionStrategy


@dataclass(frozen=True)
class CostParameters:
    """The seven parameters of the Section 3.2 cost model (plus batching).

    ``message_overhead_bytes`` (``H``) is the fixed framing cost of one
    network message; ``batch_size`` (``b``) is the number of rows shipped per
    message, so every row is charged ``H / b`` per message it rides in.  The
    defaults (``H = 0``, ``b = 1``) recover the paper's pure bandwidth model.
    """

    argument_fraction: float  # A
    distinct_fraction: float  # D
    selectivity: float  # S
    projection_fraction: float  # P
    input_record_bytes: float  # I
    result_bytes: float  # R
    asymmetry: float = 1.0  # N
    message_overhead_bytes: float = 0.0  # H
    batch_size: float = 1.0  # b

    def __post_init__(self) -> None:
        if self.message_overhead_bytes < 0:
            raise ValueError("message_overhead_bytes (H) must be non-negative")
        if self.batch_size < 1:
            raise ValueError("batch_size (b) must be at least 1")
        if not 0.0 <= self.argument_fraction <= 1.0:
            raise ValueError("argument_fraction (A) must be in [0, 1]")
        if not 0.0 < self.distinct_fraction <= 1.0:
            raise ValueError("distinct_fraction (D) must be in (0, 1]")
        if not 0.0 <= self.selectivity <= 1.0:
            raise ValueError("selectivity (S) must be in [0, 1]")
        if self.projection_fraction < 0.0:
            raise ValueError("projection_fraction (P) must be non-negative")
        if self.input_record_bytes <= 0:
            raise ValueError("input_record_bytes (I) must be positive")
        if self.result_bytes < 0:
            raise ValueError("result_bytes (R) must be non-negative")
        if self.asymmetry <= 0:
            raise ValueError("asymmetry (N) must be positive")

    # Short aliases matching the paper's notation, for readable formulas.
    @property
    def A(self) -> float:  # noqa: N802
        return self.argument_fraction

    @property
    def D(self) -> float:  # noqa: N802
        return self.distinct_fraction

    @property
    def S(self) -> float:  # noqa: N802
        return self.selectivity

    @property
    def P(self) -> float:  # noqa: N802
        return self.projection_fraction

    @property
    def I(self) -> float:  # noqa: N802, E743
        return self.input_record_bytes

    @property
    def R(self) -> float:  # noqa: N802
        return self.result_bytes

    @property
    def N(self) -> float:  # noqa: N802
        return self.asymmetry

    @property
    def overhead_per_tuple(self) -> float:
        """Amortised per-message framing bytes charged to each shipped row."""
        return self.message_overhead_bytes / self.batch_size

    def with_selectivity(self, selectivity: float) -> "CostParameters":
        return replace(self, selectivity=selectivity)

    def with_result_bytes(self, result_bytes: float) -> "CostParameters":
        return replace(self, result_bytes=result_bytes)

    def with_batch_size(self, batch_size: float) -> "CostParameters":
        return replace(self, batch_size=batch_size)

    def with_message_overhead(self, message_overhead_bytes: float) -> "CostParameters":
        return replace(self, message_overhead_bytes=message_overhead_bytes)

    @classmethod
    def paper_experiment(
        cls,
        input_record_bytes: float,
        argument_fraction: float,
        result_bytes: float,
        selectivity: float,
        asymmetry: float = 1.0,
        distinct_fraction: float = 1.0,
    ) -> "CostParameters":
        """Parameters in the form the paper's experiments state them.

        The experiments fix ``P`` implicitly through the relation
        ``P * (I + R) = I * (1 - A) + R`` — only the non-argument columns and
        the results are returned by the client-site join.
        """
        projection = (input_record_bytes * (1.0 - argument_fraction) + result_bytes) / (
            input_record_bytes + result_bytes
        )
        return cls(
            argument_fraction=argument_fraction,
            distinct_fraction=distinct_fraction,
            selectivity=selectivity,
            projection_fraction=projection,
            input_record_bytes=input_record_bytes,
            result_bytes=result_bytes,
            asymmetry=asymmetry,
        )


@dataclass(frozen=True)
class StrategyCost:
    """Per-tuple bandwidth costs of one strategy."""

    strategy: ExecutionStrategy
    downlink_bytes: float
    uplink_bytes: float
    weighted_uplink_bytes: float

    @property
    def bottleneck_bytes(self) -> float:
        """The paper's cost: the larger of downlink and (asymmetry-weighted) uplink."""
        return max(self.downlink_bytes, self.weighted_uplink_bytes)

    @property
    def bottleneck_link(self) -> str:
        return "downlink" if self.downlink_bytes >= self.weighted_uplink_bytes else "uplink"


class CostModel:
    """Analytic comparison of semi-join and client-site join (and naive)."""

    def __init__(self, parameters: CostParameters) -> None:
        self.parameters = parameters

    # -- per-strategy costs ----------------------------------------------------------

    def semi_join_cost(self) -> StrategyCost:
        p = self.parameters
        h = p.overhead_per_tuple
        downlink = p.D * (p.A * p.I + h)
        uplink = p.D * (p.R + h)
        return StrategyCost(
            strategy=ExecutionStrategy.SEMI_JOIN,
            downlink_bytes=downlink,
            uplink_bytes=uplink,
            weighted_uplink_bytes=p.N * uplink,
        )

    def client_site_join_cost(self) -> StrategyCost:
        p = self.parameters
        h = p.overhead_per_tuple
        downlink = p.I + h
        # The client answers every record batch with exactly one reply
        # message, surviving rows or not, so the reply overhead share is not
        # scaled by the selectivity.
        uplink = (p.I + p.R) * p.P * p.S + h
        return StrategyCost(
            strategy=ExecutionStrategy.CLIENT_SITE_JOIN,
            downlink_bytes=downlink,
            uplink_bytes=uplink,
            weighted_uplink_bytes=p.N * uplink,
        )

    def naive_cost(self) -> StrategyCost:
        """The naive strategy ships what the semi-join ships but without
        duplicate elimination; its real penalty (per-tuple latency) is not a
        bandwidth effect and is modelled by the concurrency analysis instead."""
        p = self.parameters
        h = p.overhead_per_tuple
        downlink = p.A * p.I + h
        uplink = p.R + h
        return StrategyCost(
            strategy=ExecutionStrategy.NAIVE,
            downlink_bytes=downlink,
            uplink_bytes=uplink,
            weighted_uplink_bytes=p.N * uplink,
        )

    def cost(self, strategy: ExecutionStrategy) -> StrategyCost:
        if strategy is ExecutionStrategy.SEMI_JOIN:
            return self.semi_join_cost()
        if strategy is ExecutionStrategy.CLIENT_SITE_JOIN:
            return self.client_site_join_cost()
        return self.naive_cost()

    # -- comparisons ------------------------------------------------------------------

    def relative_time(self) -> float:
        """Predicted (client-site join time) / (semi-join time).

        This is the quantity plotted on the y-axis of Figures 8, 9 and 10.
        """
        semi = self.semi_join_cost().bottleneck_bytes
        client = self.client_site_join_cost().bottleneck_bytes
        if semi <= 0:
            return math.inf if client > 0 else 1.0
        return client / semi

    def preferred_strategy(self) -> ExecutionStrategy:
        """The strategy with the smaller bottleneck cost (ties go to the semi-join)."""
        if self.client_site_join_cost().bottleneck_bytes < self.semi_join_cost().bottleneck_bytes:
            return ExecutionStrategy.CLIENT_SITE_JOIN
        return ExecutionStrategy.SEMI_JOIN

    def all_costs(self) -> Dict[ExecutionStrategy, StrategyCost]:
        return {strategy: self.cost(strategy) for strategy in ExecutionStrategy}

    def overlapped_cost(self, strategy: ExecutionStrategy, overlap_window: float) -> float:
        """Per-tuple cost with up to ``overlap_window`` batches in flight.

        The overlap-aware extension of the bottleneck rule: with W request
        batches outstanding the two link transfers combine as their *max*
        (the overlapped share) plus the non-overlapped remainder amortised
        over the window::

            cost(W) = max(down, up) + (down + up - max(down, up)) / W

        ``W = 1`` is synchronous shipping — the links take turns, so their
        costs *add* (the naive strategy's round-trip behaviour); as ``W``
        grows the cost approaches the paper's pure ``max()`` bottleneck,
        which is what the pipelined strategies already assume.
        """
        if overlap_window < 1:
            raise ValueError("overlap_window must be at least 1")
        cost = self.cost(strategy)
        down = cost.downlink_bytes
        up = cost.weighted_uplink_bytes
        overlapped = max(down, up)
        return overlapped + (down + up - overlapped) / overlap_window

    def overlap_speedup(self, strategy: ExecutionStrategy, overlap_window: float) -> float:
        """Predicted (synchronous time) / (time with ``overlap_window`` batches)."""
        synchronous = self.overlapped_cost(strategy, 1.0)
        overlapped = self.overlapped_cost(strategy, overlap_window)
        if overlapped <= 0:
            return 1.0
        return synchronous / overlapped

    def batching_speedup(self, strategy: ExecutionStrategy, batch_size: float) -> float:
        """Predicted (batch of 1 time) / (batch of ``batch_size`` time).

        Compares the strategy's bottleneck cost at ``batch_size`` 1 against
        the same strategy at ``batch_size``, holding every other parameter
        fixed.  Meaningful only when ``message_overhead_bytes`` is non-zero
        (otherwise the ratio is 1: the paper model has no per-message cost).
        """
        single = CostModel(self.parameters.with_batch_size(1.0)).cost(strategy)
        batched = CostModel(self.parameters.with_batch_size(batch_size)).cost(strategy)
        if batched.bottleneck_bytes <= 0:
            return 1.0
        return single.bottleneck_bytes / batched.bottleneck_bytes

    # -- analytic crossover points -------------------------------------------------------

    def csj_knee_selectivity(self) -> float:
        """Selectivity at which the client-site join's uplink overtakes its downlink.

        Below this selectivity the CSJ curve of Figure 8 is flat (downlink
        bound); above it the curve rises linearly (uplink bound).  The paper
        quotes ``I / (N * P * (R + I))`` for this point.
        """
        p = self.parameters
        denominator = p.N * p.P * (p.R + p.I)
        if denominator <= 0:
            return math.inf
        return min(1.0, p.I / denominator)

    def breakeven_selectivity(self) -> Optional[float]:
        """Selectivity at which CSJ and semi-join costs are equal, if any.

        In the uplink-bound regime the CSJ uplink cost ``N*(I+R)*P*S`` equals
        the semi-join bottleneck at ``S* = SJ_cost / (N*(I+R)*P)``.  Returns
        ``None`` when the CSJ is cheaper for every selectivity in [0, 1] or
        more expensive for every selectivity (downlink already above the
        semi-join cost).
        """
        p = self.parameters
        semi = self.semi_join_cost().bottleneck_bytes
        csj_downlink = p.I
        if csj_downlink >= semi:
            return None  # CSJ never cheaper, regardless of selectivity
        slope = p.N * (p.I + p.R) * p.P
        if slope <= 0:
            return None
        breakeven = semi / slope
        return breakeven if breakeven <= 1.0 else None

    def breakeven_result_size(self) -> Optional[float]:
        """Result size at which CSJ and semi-join costs are equal (Figure 10).

        Solving ``max(I, N*S*P'*(I+R)) = max(D*A*I, N*D*R)`` for R with the
        experiments' convention ``P*(I+R) = I*(1-A) + R``.  Returns ``None``
        when no positive crossover exists (e.g. S = 1 with A < 1).
        """
        p = self.parameters
        non_argument_bytes = p.I * (1.0 - p.A)
        # In the uplink-bound regime for both strategies:
        #   N * S * (non_arguments + R)  =  N * D * R
        #   =>  R * (D - S) = S * non_arguments
        if p.D <= p.S:
            return None
        candidate = p.S * non_argument_bytes / (p.D - p.S)
        # Validate that both sides are indeed uplink-bound at the candidate.
        at_candidate = CostModel(self.parameters.with_result_bytes(candidate))
        semi = at_candidate.semi_join_cost()
        client = at_candidate.client_site_join_cost()
        if semi.bottleneck_link == "uplink" and client.bottleneck_link == "uplink":
            return candidate
        # Otherwise fall back to a numeric scan (downlink-bound corner cases).
        return self._numeric_breakeven_result_size()

    def _numeric_breakeven_result_size(self, upper: float = 1e7) -> Optional[float]:
        low, high = 0.0, upper
        ratio_low = CostModel(self.parameters.with_result_bytes(low)).relative_time()
        ratio_high = CostModel(self.parameters.with_result_bytes(high)).relative_time()
        if (ratio_low - 1.0) * (ratio_high - 1.0) > 0:
            return None
        for _ in range(200):
            mid = (low + high) / 2.0
            ratio_mid = CostModel(self.parameters.with_result_bytes(mid)).relative_time()
            if (ratio_low - 1.0) * (ratio_mid - 1.0) <= 0:
                high = mid
                ratio_high = ratio_mid
            else:
                low = mid
                ratio_low = ratio_mid
        return (low + high) / 2.0

    def asymptotic_relative_time(self) -> float:
        """Limit of the CSJ/SJ ratio as the result size grows without bound.

        With the experiments' projection convention the ratio approaches the
        pushable-predicate selectivity S (the horizontal asymptotes of
        Figure 10) whenever both strategies are uplink bound.
        """
        return self.parameters.S / self.parameters.D

    def __repr__(self) -> str:
        p = self.parameters
        return (
            f"CostModel(A={p.A:g}, D={p.D:g}, S={p.S:g}, P={p.P:g}, "
            f"I={p.I:g}, R={p.R:g}, N={p.N:g})"
        )
