"""The paper's primary contribution.

* :mod:`repro.core.strategies` — the three execution strategies for
  client-site UDFs and their configuration;
* :mod:`repro.core.costmodel` — the Section 3.2 bandwidth cost model
  (parameters A, D, S, P, I, R, N) and its strategy-choice predictions;
* :mod:`repro.core.concurrency` — the B·T pipeline-concurrency analysis;
* :mod:`repro.core.execution` — the operators implementing naive,
  semi-join, and client-site-join execution on the network simulator;
* :mod:`repro.core.optimizer` — the extended System-R optimizer with the
  plan-site and column-location physical properties, plus the rank-order and
  heuristic baselines.
"""

from repro.core.strategies import ExecutionStrategy, StrategyConfig
from repro.core.costmodel import CostModel, CostParameters, StrategyCost
from repro.core.concurrency import recommended_concurrency_factor, PipelineAnalysis

__all__ = [
    "ExecutionStrategy",
    "StrategyConfig",
    "CostModel",
    "CostParameters",
    "StrategyCost",
    "recommended_concurrency_factor",
    "PipelineAnalysis",
]
