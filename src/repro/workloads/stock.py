"""The stock-market scenario from the paper's introduction (Figures 1 and 11).

A server publishes ``StockQuotes`` (name, price history, daily change/close,
financial report) and ``Estimations`` (broker ratings per company).  An
investor's client holds proprietary analysis UDFs — ``ClientAnalysis``
(rates a quote history) and ``Volatility`` (estimates price volatility from
quotes and futures prices) — that must run at the client.

:class:`StockWorkload` builds a fully populated :class:`~repro.server.engine.Database`
with those tables and UDFs, so examples, tests and the optimizer benchmarks
can all run the paper's actual queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.strategies import StrategyConfig
from repro.network.topology import NetworkConfig
from repro.relational.types import DataObject, FLOAT, INTEGER, STRING, TIME_SERIES, TimeSeries
from repro.server.engine import Database


def client_analysis(quotes: TimeSeries) -> float:
    """The investor's proprietary rating of a price history.

    A deterministic blend of momentum and level, scaled to roughly 0-1000 so
    that thresholds like ``> 500`` (Figure 1) are meaningful.
    """
    values = list(quotes)
    if not values:
        return 0.0
    level = sum(values) / len(values)
    momentum = values[-1] - values[0]
    return round(level * 2.0 + momentum * 5.0, 4)


def client_rating(quotes: TimeSeries) -> int:
    """A 1-5 star rating derived from :func:`client_analysis` (Figure 11)."""
    score = client_analysis(quotes)
    return max(1, min(5, int(score // 200) + 1))


def volatility(quotes: TimeSeries, future_prices: TimeSeries) -> float:
    """The Figure 13 ``Volatility`` UDF: dispersion of quotes vs. futures."""
    history = list(quotes)
    futures = list(future_prices)
    if not history or not futures:
        return 0.0
    mean = sum(history) / len(history)
    variance = sum((value - mean) ** 2 for value in history) / len(history)
    spread = abs(futures[-1] - history[-1])
    return round(variance ** 0.5 + spread, 4)


@dataclass
class StockWorkload:
    """Builds the stock-market database of the paper's running example."""

    company_count: int = 60
    brokers: Sequence[str] = ("Aldrich", "Birch", "Cornell", "Deyo")
    quote_length: int = 30
    seed: int = 1999
    network: Optional[NetworkConfig] = None
    analysis_cost_seconds: float = 0.002
    company_names: List[str] = field(default_factory=list)

    def build(self, default_config: Optional[StrategyConfig] = None) -> Database:
        """Create and populate the database, including the client-site UDFs."""
        rng = random.Random(self.seed)
        network = self.network if self.network is not None else NetworkConfig.paper_symmetric()
        db = Database(network=network, default_config=default_config or StrategyConfig())

        db.create_table(
            "StockQuotes",
            [
                ("Name", STRING),
                ("Quotes", TIME_SERIES),
                ("FuturePrices", TIME_SERIES),
                ("Change", FLOAT),
                ("Close", FLOAT),
                ("Report", STRING),
            ],
        )
        db.create_table(
            "Estimations",
            [
                ("CompanyName", STRING),
                ("BrokerName", STRING),
                ("Rating", INTEGER),
            ],
        )

        quotes_table = db.catalog.table("StockQuotes")
        estimations_table = db.catalog.table("Estimations")

        self.company_names = [f"Company{index:03d}" for index in range(self.company_count)]
        for name in self.company_names:
            base = rng.uniform(20.0, 400.0)
            drift = rng.uniform(-0.03, 0.05)
            history = []
            price = base
            for _ in range(self.quote_length):
                price = max(1.0, price * (1.0 + drift + rng.uniform(-0.02, 0.02)))
                history.append(round(price, 2))
            if rng.random() < 0.35:
                # Some companies gap up sharply on the last day so that the
                # Figure 1 "20%+ uptick" predicate selects a meaningful subset.
                history[-1] = round(history[-2] * rng.uniform(1.25, 1.45), 2)
            futures = [round(price * (1.0 + rng.uniform(-0.1, 0.15)), 2) for _ in range(5)]
            close = history[-1]
            change = round(close - history[-2], 2) if len(history) > 1 else 0.0
            report = f"Annual report for {name}: " + "x" * rng.randint(200, 800)
            quotes_table.insert(
                [name, TimeSeries(history), TimeSeries(futures), change, close, report]
            )

            for broker in self.brokers:
                if rng.random() < 0.8:
                    estimations_table.insert([name, broker, rng.randint(1, 5)])

        db.register_client_udf(
            "ClientAnalysis",
            client_analysis,
            result_dtype=FLOAT,
            result_size_bytes=8,
            cost_per_call_seconds=self.analysis_cost_seconds,
            selectivity=0.4,
            description="proprietary rating of a quote history",
        )
        db.register_client_udf(
            "ClientRating",
            client_rating,
            result_dtype=INTEGER,
            result_size_bytes=4,
            cost_per_call_seconds=self.analysis_cost_seconds,
            selectivity=0.2,
            description="1-5 star rating derived from the proprietary analysis",
        )
        db.register_client_udf(
            "Volatility",
            volatility,
            result_dtype=FLOAT,
            result_size_bytes=8,
            cost_per_call_seconds=self.analysis_cost_seconds,
            selectivity=0.5,
            description="volatility estimate from quotes and futures prices",
        )
        db.register_server_udf(
            "Uptick",
            lambda change, close: (change / close) if close else 0.0,
            result_dtype=FLOAT,
            description="relative daily change, computable on the server",
        )
        return db

    # -- the paper's queries ------------------------------------------------------------------

    @staticmethod
    def figure1_query(threshold: float = 500.0, uptick: float = 0.2) -> str:
        """The motivating query of Figure 1."""
        return (
            "SELECT S.Name, S.Report FROM StockQuotes S "
            f"WHERE S.Change / S.Close > {uptick} AND ClientAnalysis(S.Quotes) > {threshold}"
        )

    @staticmethod
    def figure11_query() -> str:
        """The two-relation query of Figure 11 (analysis agrees with a broker)."""
        return (
            "SELECT S.Name, E.BrokerName FROM StockQuotes S, Estimations E "
            "WHERE S.Name = E.CompanyName AND ClientRating(S.Quotes) = E.Rating"
        )

    @staticmethod
    def figure13_query() -> str:
        """Figure 11's query extended with the Volatility expression (Figure 13)."""
        return (
            "SELECT S.Name, E.BrokerName, Volatility(S.Quotes, S.FuturePrices) AS Vol "
            "FROM StockQuotes S, Estimations E "
            "WHERE S.Name = E.CompanyName AND ClientRating(S.Quotes) = E.Rating"
        )
