"""Parameter-sweep harnesses that regenerate the paper's figures.

Each harness builds the synthetic workload of the corresponding experiment,
executes it under the relevant strategies on the network simulator, and
returns the measured series together with the cost model's prediction, so
benchmarks (and EXPERIMENTS.md) can compare shapes directly:

* :class:`ConcurrencySweep`   — Figure 6  (execution time vs. pipeline concurrency factor)
* :class:`SelectivitySweep`   — Figures 8 and 9 (CSJ/SJ ratio vs. selectivity)
* :class:`ResultSizeSweep`    — Figure 10 (CSJ/SJ ratio vs. result size)

The harnesses construct execution operators directly through the public
``build_operator`` API (rather than through SQL) because the experiments
require the pushable predicate to be applied *after* the UDF — exactly the
situation of the paper's Figure 7 query, where the predicate is itself a
client-site UDF over the same argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.client.registry import UdfRegistry
from repro.client.runtime import ClientRuntime
from repro.core.costmodel import CostModel, CostParameters
from repro.core.execution.context import RemoteExecutionContext
from repro.core.execution.rewrite import build_operator
from repro.core.strategies import ExecutionStrategy, StrategyConfig
from repro.network.topology import NetworkConfig
from repro.relational.expressions import ColumnRef, Comparison, Literal
from repro.relational.operators.scan import TableScan
from repro.relational.types import DataObject
from repro.workloads.synthetic import (
    SyntheticWorkload,
    make_object_relation,
    register_identity_udf,
)


@dataclass
class ExperimentPoint:
    """One measured execution in a sweep."""

    strategy: ExecutionStrategy
    elapsed_seconds: float
    downlink_bytes: int
    uplink_bytes: int
    rows: int
    udf_invocations: int
    downlink_messages: int = 0
    uplink_messages: int = 0
    result_rows: Tuple[Tuple, ...] = ()
    parameters: Dict[str, float] = field(default_factory=dict)
    #: Mid-query strategy switching, when the config armed it: how many
    #: switches fired and which strategies ran, in first-use order.
    strategy_switches: int = 0
    strategies_used: Tuple[ExecutionStrategy, ...] = ()

    @property
    def total_bytes(self) -> int:
        return self.downlink_bytes + self.uplink_bytes


def run_workload_point(
    workload: SyntheticWorkload,
    network: NetworkConfig,
    config: StrategyConfig,
    storage_dir: Optional[str] = None,
    indexes: bool = False,
) -> ExperimentPoint:
    """Execute the Figure 7 style query for one parameter point.

    The query computes ``Analyze(Argument)`` for every row, keeps the rows
    whose result falls below the workload's selectivity threshold, and
    returns the non-argument column together with the result — the byte flows
    of the paper's ``UDF1``/``UDF2`` experiment.

    With ``storage_dir`` the workload's table is written to a slotted-page
    heap file there and scanned back through a buffer pool — the execution
    then exercises the durable storage data path, and must produce exactly
    the in-memory point (rows *and* wire bytes).  ``indexes`` (paged runs
    only) additionally creates a hash index on the argument column *before*
    loading, so every insert maintains it incrementally — index maintenance
    must never change what the query returns or ships.
    """
    table = workload.build_table()
    storage_engine = None
    if storage_dir is not None:
        from repro.relational.table import Table
        from repro.storage.engine import StorageEngine

        storage_engine = StorageEngine(storage_dir)
        backend = storage_engine.create_table(table.name, table.schema, replace=True)
        if indexes:
            # DataObject arguments are unorderable, so the equality-only
            # hash index is the one that applies here.
            storage_engine.create_index(
                "workload_argument_idx", table.name, "Argument", kind="hash"
            )
        paged = Table(table.name, table.schema, storage=backend)
        paged.insert_many(tuple(row) for row in table.rows)
        table = paged
    registry = workload.build_registry()
    context = RemoteExecutionContext.create(network, client=ClientRuntime(registry=registry))

    scan = TableScan(table)
    result_column = workload.result_column_name
    pushable_predicate = Comparison(
        "<",
        ColumnRef(result_column),
        Literal(DataObject(workload.result_bytes, seed=workload.selectivity_threshold_seed)),
    )
    output_columns = [f"{workload.relation_name}.NonArgument", result_column]

    operator = build_operator(
        child=scan,
        udf=registry.get(workload.udf_name),
        argument_columns=[f"{workload.relation_name}.Argument"],
        context=context,
        config=config,
        pushable_predicate=pushable_predicate,
        output_columns=output_columns,
    )
    rows = operator.run()
    if storage_engine is not None:
        storage_engine.close()
    switcher = getattr(operator, "switcher", None)
    return ExperimentPoint(
        strategy=config.strategy,
        elapsed_seconds=context.elapsed_seconds,
        downlink_bytes=context.downlink_bytes,
        uplink_bytes=context.uplink_bytes,
        rows=len(rows),
        udf_invocations=context.client.udf_invocations,
        downlink_messages=context.channel.downlink.stats.message_count,
        uplink_messages=context.channel.uplink.stats.message_count,
        strategy_switches=switcher.switch_count if switcher is not None else 0,
        strategies_used=switcher.strategies_used if switcher is not None else (),
        # repr is a total order over mixed-type (and None-valued) rows, which
        # plain tuple comparison is not; equal multisets still sort equally.
        result_rows=tuple(sorted((tuple(row) for row in rows), key=repr)),
        parameters={
            "input_record_bytes": workload.input_record_bytes,
            "argument_fraction": workload.argument_fraction,
            "result_bytes": workload.result_bytes,
            "selectivity": workload.selectivity,
            "distinct_fraction": workload.distinct_fraction,
            "row_count": workload.row_count,
        },
    )


# ---------------------------------------------------------------------------
# Figure 6 — pipeline concurrency factor
# ---------------------------------------------------------------------------


@dataclass
class ConcurrencySweep:
    """Figure 6: query time vs. pipeline concurrency factor.

    ``SELECT UDF(R.DataObject) FROM Relation R`` over 100 rows, for several
    object sizes, executed as a semi-join whose buffer size is swept.  The
    default network models the paper's slow link with a bandwidth·latency
    product of roughly 5000 bytes, so the 1000-byte curve flattens near a
    factor of 5 and smaller objects flatten later, as in the paper.
    """

    row_count: int = 100
    object_sizes: Sequence[int] = (100, 500, 1000)
    concurrency_factors: Sequence[int] = tuple(range(1, 22))
    network: NetworkConfig = field(
        default_factory=lambda: NetworkConfig.symmetric(3600.0, latency=0.4, name="fig6-modem")
    )
    udf_cost_seconds: float = 0.03

    def run_point(self, object_size: int, factor: int) -> ExperimentPoint:
        table = make_object_relation("Relation", self.row_count, object_size)
        registry = UdfRegistry()
        udf = register_identity_udf(
            registry,
            name="EchoObject",
            result_size=object_size,
            cost_per_call_seconds=self.udf_cost_seconds,
        )
        context = RemoteExecutionContext.create(
            self.network, client=ClientRuntime(registry=registry)
        )
        operator = build_operator(
            child=TableScan(table),
            udf=udf,
            argument_columns=["Relation.DataObject"],
            context=context,
            config=StrategyConfig.semi_join(concurrency_factor=factor),
        )
        rows = operator.run()
        return ExperimentPoint(
            strategy=ExecutionStrategy.SEMI_JOIN,
            elapsed_seconds=context.elapsed_seconds,
            downlink_bytes=context.downlink_bytes,
            uplink_bytes=context.uplink_bytes,
            rows=len(rows),
            udf_invocations=context.client.udf_invocations,
            parameters={"object_size": object_size, "concurrency_factor": factor},
        )

    def run(self) -> Dict[int, List[Tuple[int, float]]]:
        """``{object_size: [(factor, elapsed_seconds), ...]}``."""
        series: Dict[int, List[Tuple[int, float]]] = {}
        for object_size in self.object_sizes:
            points: List[Tuple[int, float]] = []
            for factor in self.concurrency_factors:
                point = self.run_point(object_size, factor)
                points.append((factor, point.elapsed_seconds))
            series[object_size] = points
        return series

    def predicted_optimal_factor(self, object_size: int) -> int:
        """The analytic B·T recommendation for this object size."""
        from repro.core.concurrency import recommended_concurrency_factor

        return recommended_concurrency_factor(
            self.network,
            request_payload_bytes=object_size + 4,
            response_payload_bytes=object_size + 4,
            client_seconds_per_tuple=self.udf_cost_seconds,
        )


# ---------------------------------------------------------------------------
# Figures 8 and 9 — CSJ/SJ ratio vs. selectivity
# ---------------------------------------------------------------------------


@dataclass
class SelectivitySweep:
    """Figures 8 (symmetric) and 9 (asymmetric): relative time vs. selectivity."""

    row_count: int = 100
    input_record_bytes: int = 1000
    argument_fraction: float = 0.5
    result_sizes: Sequence[int] = (100, 1000, 2000, 5000)
    selectivities: Sequence[float] = tuple(round(0.1 * i, 1) for i in range(0, 11))
    network: NetworkConfig = field(default_factory=NetworkConfig.paper_symmetric)
    udf_cost_seconds: float = 0.001
    distinct_fraction: float = 1.0

    def _workload(self, result_size: int, selectivity: float) -> SyntheticWorkload:
        return SyntheticWorkload(
            row_count=self.row_count,
            input_record_bytes=self.input_record_bytes,
            argument_fraction=self.argument_fraction,
            result_bytes=result_size,
            selectivity=selectivity,
            distinct_fraction=self.distinct_fraction,
            udf_cost_seconds=self.udf_cost_seconds,
        )

    def predicted_ratio(self, result_size: int, selectivity: float) -> float:
        parameters = CostParameters.paper_experiment(
            input_record_bytes=self.input_record_bytes,
            argument_fraction=self.argument_fraction,
            result_bytes=result_size,
            selectivity=selectivity,
            asymmetry=self.network.asymmetry,
            distinct_fraction=self.distinct_fraction,
        )
        return CostModel(parameters).relative_time()

    def run(self) -> List[Dict[str, float]]:
        """One record per (result size, selectivity) with measured and predicted ratios."""
        records: List[Dict[str, float]] = []
        for result_size in self.result_sizes:
            # The semi-join does not apply the pushable predicate early, so its
            # time is independent of the selectivity: measure it once.
            baseline = run_workload_point(
                self._workload(result_size, selectivity=1.0),
                self.network,
                StrategyConfig.semi_join(),
            )
            for selectivity in self.selectivities:
                csj = run_workload_point(
                    self._workload(result_size, selectivity),
                    self.network,
                    StrategyConfig.client_site_join(),
                )
                records.append(
                    {
                        "result_size": result_size,
                        "selectivity": selectivity,
                        "semi_join_seconds": baseline.elapsed_seconds,
                        "client_join_seconds": csj.elapsed_seconds,
                        "measured_ratio": csj.elapsed_seconds / baseline.elapsed_seconds,
                        "predicted_ratio": self.predicted_ratio(result_size, selectivity),
                        "csj_downlink_bytes": csj.downlink_bytes,
                        "csj_uplink_bytes": csj.uplink_bytes,
                        "sj_downlink_bytes": baseline.downlink_bytes,
                        "sj_uplink_bytes": baseline.uplink_bytes,
                    }
                )
        return records

    @classmethod
    def figure8(cls) -> "SelectivitySweep":
        """The exact parameterisation of Figure 8 (symmetric network)."""
        return cls(
            input_record_bytes=1000,
            argument_fraction=0.5,
            result_sizes=(100, 1000, 2000, 5000),
            network=NetworkConfig.paper_symmetric(),
        )

    @classmethod
    def figure9(cls, asymmetry: float = 100.0) -> "SelectivitySweep":
        """The exact parameterisation of Figure 9 (asymmetric network, N=100)."""
        return cls(
            input_record_bytes=5000,
            argument_fraction=0.8,
            result_sizes=(500, 1000, 5000),
            network=NetworkConfig.paper_asymmetric(asymmetry=asymmetry),
        )


# ---------------------------------------------------------------------------
# Figure 10 — CSJ/SJ ratio vs. result size
# ---------------------------------------------------------------------------


@dataclass
class ResultSizeSweep:
    """Figure 10: relative time vs. UDF result size, for several selectivities."""

    row_count: int = 100
    input_record_bytes: int = 500
    argument_fraction: float = 0.2
    selectivities: Sequence[float] = (0.25, 0.5, 0.75, 1.0)
    result_sizes: Sequence[int] = tuple(range(0, 2001, 200))
    network: NetworkConfig = field(default_factory=NetworkConfig.paper_symmetric)
    udf_cost_seconds: float = 0.001
    distinct_fraction: float = 1.0

    def _workload(self, result_size: int, selectivity: float) -> SyntheticWorkload:
        return SyntheticWorkload(
            row_count=self.row_count,
            input_record_bytes=self.input_record_bytes,
            argument_fraction=self.argument_fraction,
            result_bytes=result_size,
            selectivity=selectivity,
            distinct_fraction=self.distinct_fraction,
            udf_cost_seconds=self.udf_cost_seconds,
        )

    def predicted_ratio(self, result_size: int, selectivity: float) -> float:
        parameters = CostParameters.paper_experiment(
            input_record_bytes=self.input_record_bytes,
            argument_fraction=self.argument_fraction,
            result_bytes=result_size,
            selectivity=selectivity,
            asymmetry=self.network.asymmetry,
            distinct_fraction=self.distinct_fraction,
        )
        return CostModel(parameters).relative_time()

    def run(self) -> List[Dict[str, float]]:
        records: List[Dict[str, float]] = []
        for selectivity in self.selectivities:
            for result_size in self.result_sizes:
                baseline = run_workload_point(
                    self._workload(result_size, selectivity),
                    self.network,
                    StrategyConfig.semi_join(),
                )
                csj = run_workload_point(
                    self._workload(result_size, selectivity),
                    self.network,
                    StrategyConfig.client_site_join(),
                )
                records.append(
                    {
                        "selectivity": selectivity,
                        "result_size": result_size,
                        "semi_join_seconds": baseline.elapsed_seconds,
                        "client_join_seconds": csj.elapsed_seconds,
                        "measured_ratio": csj.elapsed_seconds / baseline.elapsed_seconds,
                        "predicted_ratio": self.predicted_ratio(result_size, selectivity),
                    }
                )
        return records


def format_records(records: Sequence[Dict[str, float]], columns: Sequence[str]) -> str:
    """Render sweep records as a fixed-width text table (for bench output)."""
    widths = {column: max(len(column), 12) for column in columns}
    header = "  ".join(column.rjust(widths[column]) for column in columns)
    lines = [header, "-" * len(header)]
    for record in records:
        cells = []
        for column in columns:
            value = record.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:.4g}".rjust(widths[column]))
            else:
                cells.append(str(value).rjust(widths[column]))
        lines.append("  ".join(cells))
    return "\n".join(lines)
