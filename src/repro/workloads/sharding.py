"""Canonical sharded scatter-gather scenarios.

Builds matched single-site / distributed setups over the *same* logical
data, so every experiment (and the Hypothesis equivalence sweep) can check
the distributed answer against the single-site ground truth, then measure
what the fan-out buys: a bulk client-site UDF scan whose wire time shrinks
with the shard count, because each site's channel carries only its
fragment.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.adaptive.store import StatisticsStore
from repro.network.topology import NetworkConfig
from repro.relational.types import FLOAT, INTEGER, STRING, TIME_SERIES, TimeSeries
from repro.server.engine import Database
from repro.distribution import (
    ClusterConfig,
    DistributedDatabase,
    ShardingSpec,
    SiteConfig,
)

#: Per-site link: modest enough that shipping a whole fragment dominates.
DEFAULT_SITE_BANDWIDTH = 120_000.0
DEFAULT_LATENCY = 0.01

#: The bulk scan every scenario measures: a client-site UDF over the series.
FILTER_SQL = "SELECT T.Name FROM Trades T WHERE Score(T.Series) > 10"
#: Same scan joined against the replicated dimension table.
JOIN_SQL = (
    "SELECT T.Name, S.Weight FROM Trades T, Sectors S "
    "WHERE T.Sector = S.Sector AND Score(T.Series) > 10"
)
#: Output shaping exercised at the coordinator, not per shard.
SHAPED_SQL = (
    "SELECT T.Name FROM Trades T WHERE Score(T.Series) > 10 "
    "ORDER BY T.Name LIMIT 10"
)


def _score(series) -> float:
    return sum(series) / len(series)


def trade_rows(rows: int, series_points: int = 48) -> List[list]:
    """Deterministic trade rows: names, sectors, series, and a shard key."""
    sectors = ["energy", "tech", "retail", "bonds"]
    return [
        [
            f"T{index:04d}",
            sectors[index % len(sectors)],
            TimeSeries([5 + (index * 7 + step) % 40 for step in range(series_points)]),
            index,
        ]
        for index in range(rows)
    ]


def sector_rows() -> List[list]:
    return [
        ["energy", 1.25],
        ["tech", 2.0],
        ["retail", 0.75],
        ["bonds", 0.5],
    ]


def _populate(db, rows: int, series_points: int) -> None:
    db.create_table(
        "Trades",
        [
            ("Name", STRING),
            ("Sector", STRING),
            ("Series", TIME_SERIES),
            ("Bucket", INTEGER),
        ],
        rows=trade_rows(rows, series_points),
    )
    db.create_table("Sectors", [("Sector", STRING), ("Weight", FLOAT)], rows=sector_rows())
    db.register_client_udf(
        "Score",
        _score,
        result_dtype=FLOAT,
        result_size_bytes=8,
        cost_per_call_seconds=0.0005,
        selectivity=0.5,
    )


def site_network(
    bandwidth: float = DEFAULT_SITE_BANDWIDTH,
    latency: float = DEFAULT_LATENCY,
    name: str = "site-link",
) -> NetworkConfig:
    return NetworkConfig.symmetric(bandwidth, latency=latency, name=name)


def make_cluster(
    sites: int,
    shards: int,
    replication_factor: int = 1,
    method: str = "hash",
    bandwidths: Optional[List[float]] = None,
    networks: Optional[List[NetworkConfig]] = None,
) -> ClusterConfig:
    """A cluster of ``sites`` symmetric sites sharding Trades on Bucket."""
    if networks is None:
        networks = [
            site_network(
                bandwidth=(bandwidths[index] if bandwidths else DEFAULT_SITE_BANDWIDTH),
                name=f"site{index}-link",
            )
            for index in range(sites)
        ]
    return ClusterConfig(
        sites=[
            SiteConfig(name=f"site{index}", network=networks[index])
            for index in range(sites)
        ],
        sharding=[
            ShardingSpec(
                table="Trades",
                column="Bucket",
                shards=shards,
                method=method,
                replication_factor=replication_factor,
            )
        ],
    )


def make_sharded_setup(
    sites: int = 4,
    shards: int = 4,
    replication_factor: int = 1,
    rows: int = 96,
    series_points: int = 48,
    method: str = "hash",
    bandwidths: Optional[List[float]] = None,
    networks: Optional[List[NetworkConfig]] = None,
    statistics: Optional[StatisticsStore] = None,
) -> Tuple[Database, DistributedDatabase]:
    """Matched (single-site, distributed) databases over identical data.

    The single-site baseline runs behind one site-grade link, so speedups
    measure the fan-out, not a faster network.
    """
    single = Database(
        network=site_network(
            bandwidth=(bandwidths[0] if bandwidths else DEFAULT_SITE_BANDWIDTH),
            name="single-site-link",
        )
    )
    _populate(single, rows, series_points)
    cluster = make_cluster(
        sites,
        shards,
        replication_factor=replication_factor,
        method=method,
        bandwidths=bandwidths,
        networks=networks,
    )
    distributed = DistributedDatabase(cluster, statistics=statistics)
    _populate(distributed, rows, series_points)
    return single, distributed
