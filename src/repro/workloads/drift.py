"""Drifting-network scenarios for the adaptive runtime subsystem.

The paper's experiments run on links whose bandwidth is fixed and known.  A
production client — a phone moving between cells, a cable modem sharing its
segment — sees bandwidth *drift while the query runs*.  These scenario
constructors produce :class:`~repro.network.topology.NetworkConfig` objects
whose links follow piecewise-constant bandwidth schedules; the configured
(base) bandwidths are what a static planner believes, the schedule is what
the link actually delivers.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.network.topology import NetworkConfig


def drifting_bandwidth_network(
    base: NetworkConfig,
    drift_at_seconds: float,
    downlink_factor: float = 1.0,
    uplink_factor: float = 1.0,
    name: str = "",
) -> NetworkConfig:
    """``base`` whose bandwidths jump by the given factors at ``drift_at_seconds``.

    Factors below 1 model degradation (congestion, a weaker signal), factors
    above 1 an improving link.  A factor of exactly 1 leaves that direction
    stable.
    """
    if drift_at_seconds < 0:
        raise ValueError("drift_at_seconds must be non-negative")
    if downlink_factor <= 0 or uplink_factor <= 0:
        raise ValueError("drift factors must be positive")
    downlink_schedule: Tuple[Tuple[float, float], ...] = ()
    uplink_schedule: Tuple[Tuple[float, float], ...] = ()
    if downlink_factor != 1.0:
        downlink_schedule = ((drift_at_seconds, base.downlink_bandwidth * downlink_factor),)
    if uplink_factor != 1.0:
        uplink_schedule = ((drift_at_seconds, base.uplink_bandwidth * uplink_factor),)
    return base.with_drift(
        downlink_schedule=downlink_schedule,
        uplink_schedule=uplink_schedule,
        name=name or f"{base.name}+drift@{drift_at_seconds:g}s",
    )


def stepped_bandwidth_network(
    base: NetworkConfig,
    downlink_steps: Sequence[Tuple[float, float]] = (),
    uplink_steps: Sequence[Tuple[float, float]] = (),
    name: str = "",
) -> NetworkConfig:
    """``base`` with explicit ``(time, multiplier-of-base)`` steps per direction."""
    downlink_schedule = tuple(
        (time, base.downlink_bandwidth * factor) for time, factor in sorted(downlink_steps)
    )
    uplink_schedule = tuple(
        (time, base.uplink_bandwidth * factor) for time, factor in sorted(uplink_steps)
    )
    return base.with_drift(
        downlink_schedule=downlink_schedule,
        uplink_schedule=uplink_schedule,
        name=name or f"{base.name}+steps",
    )


def fading_uplink_scenario(
    drift_at_seconds: float = 30.0,
    fade_factor: float = 0.1,
    asymmetry: float = 100.0,
) -> NetworkConfig:
    """The benchmark scenario: the paper's N=100 link whose uplink fades.

    The uplink — already the bottleneck on the asymmetric network — drops to
    ``fade_factor`` of its configured bandwidth at ``drift_at_seconds``.  A
    static plan tuned for the configured uplink then drowns in per-message
    overhead; an adaptive execution re-batches to amortise it.
    """
    base = NetworkConfig.paper_asymmetric(asymmetry=asymmetry)
    return drifting_bandwidth_network(
        base,
        drift_at_seconds=drift_at_seconds,
        uplink_factor=fade_factor,
        name=f"fading-uplink-N{asymmetry:g}@{drift_at_seconds:g}s",
    )
