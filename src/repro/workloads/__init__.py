"""Workload generators for the paper's experiments and the examples.

* :mod:`repro.workloads.synthetic` — generic relations of sized data objects
  with controllable duplicate ratios, plus synthetic UDFs with declared
  result sizes and selectivities (what Section 4's experiments use);
* :mod:`repro.workloads.stock` — the stock-market scenario of the paper's
  introduction (StockQuotes, Estimations, ClientAnalysis, Volatility);
* :mod:`repro.workloads.experiments` — parameter sweeps that regenerate each
  figure of the evaluation section.
"""

from repro.workloads.synthetic import (
    SyntheticWorkload,
    make_object_relation,
    make_udf_relation,
    register_identity_udf,
    register_sized_udf,
    register_threshold_udf,
)
from repro.workloads.stock import StockWorkload
from repro.workloads.experiments import (
    ConcurrencySweep,
    SelectivitySweep,
    ResultSizeSweep,
    ExperimentPoint,
)
from repro.workloads.drift import (
    drifting_bandwidth_network,
    fading_uplink_scenario,
    stepped_bandwidth_network,
)
from repro.workloads.misestimation import (
    MisestimatedSelectivityScenario,
    overestimated_selectivity_scenario,
    underestimated_selectivity_scenario,
)

__all__ = [
    "drifting_bandwidth_network",
    "fading_uplink_scenario",
    "stepped_bandwidth_network",
    "MisestimatedSelectivityScenario",
    "overestimated_selectivity_scenario",
    "underestimated_selectivity_scenario",
    "SyntheticWorkload",
    "make_object_relation",
    "make_udf_relation",
    "register_identity_udf",
    "register_sized_udf",
    "register_threshold_udf",
    "StockWorkload",
    "ConcurrencySweep",
    "SelectivitySweep",
    "ResultSizeSweep",
    "ExperimentPoint",
]
