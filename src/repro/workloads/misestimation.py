"""Misestimated-selectivity scenarios for mid-query strategy switching.

The optimizer's semi-join vs. client-site-join choice hinges on the UDF's
predicate selectivity (Figures 8-10) — a number the plan takes on faith from
the UDF's declaration.  These scenarios make the declaration *wrong by a
large factor*: the planner, believing the declared selectivity, commits to
the strategy the paper's cost model recommends for it, while the data
realises a very different selectivity for which the *other* strategy wins.
A committed (static) execution is then provably wrong for most of the query;
a mid-query switching execution observes the true selectivity within the
first probe segments and hands the tail to the right strategy.

The relation is laid out *interleaved* (passing rows spread uniformly, same
multiset), because a run can only observe the true selectivity early if any
prefix of the input reveals it — the clustered layout the plain sweeps use
would show a probe segment 100% (or 0%) selectivity regardless of the truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adaptive.switcher import SwitchPolicy
from repro.core.costmodel import CostModel, CostParameters
from repro.core.strategies import ExecutionStrategy
from repro.network.topology import NetworkConfig
from repro.workloads.synthetic import SyntheticWorkload


@dataclass
class MisestimatedSelectivityScenario:
    """A workload whose declared UDF selectivity is wrong by ``>= 5x``.

    ``declared_selectivity`` is what the UDF tells the planner;
    ``actual_selectivity`` is what the data realises.  The defaults (0.9
    declared, 0.1 actual — a 9x misestimate) on the paper's asymmetric
    N = 100 network make the cost model commit to the semi-join while the
    client-site join is the oracle choice: the declared 0.9 says nine of ten
    extended records would come back over the slow uplink, the actual 0.1
    means only one in ten does.
    """

    declared_selectivity: float = 0.9
    actual_selectivity: float = 0.1
    row_count: int = 600
    input_record_bytes: int = 1000
    argument_fraction: float = 0.5
    result_bytes: int = 1000
    distinct_fraction: float = 1.0
    udf_cost_seconds: float = 0.001
    network: NetworkConfig = field(
        default_factory=lambda: NetworkConfig.paper_asymmetric(asymmetry=100.0)
    )

    def __post_init__(self) -> None:
        if self.misestimation_factor < 5.0:
            raise ValueError(
                "a misestimation scenario needs declared and actual selectivity "
                f"at least 5x apart, got {self.misestimation_factor:.1f}x"
            )

    @property
    def misestimation_factor(self) -> float:
        """How wrong the declaration is (ratio of the larger to the smaller)."""
        low = max(1e-9, min(self.declared_selectivity, self.actual_selectivity))
        high = max(self.declared_selectivity, self.actual_selectivity)
        return high / low

    def workload(self) -> SyntheticWorkload:
        """The executable workload: actual data, wrong declaration, interleaved."""
        return SyntheticWorkload(
            row_count=self.row_count,
            input_record_bytes=self.input_record_bytes,
            argument_fraction=self.argument_fraction,
            result_bytes=self.result_bytes,
            selectivity=self.actual_selectivity,
            distinct_fraction=self.distinct_fraction,
            udf_cost_seconds=self.udf_cost_seconds,
            declared_selectivity=self.declared_selectivity,
            interleaved=True,
        )

    # -- what the planner (wrongly) and an oracle (rightly) would commit to ------------

    def _parameters(self, selectivity: float) -> CostParameters:
        return CostParameters.paper_experiment(
            input_record_bytes=self.input_record_bytes,
            argument_fraction=self.argument_fraction,
            result_bytes=self.result_bytes,
            selectivity=selectivity,
            asymmetry=self.network.asymmetry,
            distinct_fraction=self.distinct_fraction,
        )

    @property
    def committed_strategy(self) -> ExecutionStrategy:
        """The strategy the cost model picks believing the declaration."""
        return CostModel(self._parameters(self.declared_selectivity)).preferred_strategy()

    @property
    def oracle_strategy(self) -> ExecutionStrategy:
        """The strategy the cost model picks knowing the actual selectivity."""
        return CostModel(self._parameters(self.actual_selectivity)).preferred_strategy()

    @property
    def plan_is_wrong(self) -> bool:
        """Whether the misestimation actually flips the strategy choice."""
        return self.committed_strategy is not self.oracle_strategy

    def switch_policy(self) -> SwitchPolicy:
        """A probe policy proportioned to the workload.

        The probe segment costs wrong-strategy money, so it is sized to a
        small fraction of the input (any interleaved prefix reveals the true
        selectivity), and segments grow steeply afterwards to bound the
        segment-boundary overhead on the correct tail.
        """
        probe = max(8, self.row_count // 100)
        return SwitchPolicy(
            initial_segment_rows=probe,
            min_rows_before_switch=probe,
            segment_growth=4.0,
        )

    def describe(self) -> str:
        return (
            f"declared S={self.declared_selectivity:g} -> commits "
            f"{self.committed_strategy.value}; actual S={self.actual_selectivity:g} "
            f"-> oracle {self.oracle_strategy.value} "
            f"({self.misestimation_factor:.0f}x misestimate, {self.network.name})"
        )


def overestimated_selectivity_scenario(**overrides) -> MisestimatedSelectivityScenario:
    """Declared 0.9, actual 0.1: the plan commits semi-join, CSJ is the oracle."""
    return MisestimatedSelectivityScenario(**overrides)


@dataclass
class MisorderedUdfScenario:
    """A two-UDF query whose misdeclared selectivities flip the right UDF *order*.

    ``ProbeA`` declares itself very selective (so the enumerator applies it
    first, expecting it to shrink the input for ``ProbeB``) but actually
    keeps almost every row; ``ProbeB`` declares itself unselective but
    actually filters nearly everything.  The committed plan *shape* — not
    just a shipping strategy — is therefore wrong: the oracle applies B
    first, and a mid-query re-optimization run observes the contradiction in
    the first probe segments, re-enters the enumerator with the observed
    statistics, and migrates the tail to the reordered plan.

    The per-call costs are chosen so the *declared* numbers genuinely favour
    A-first (A-first: ``cost_a + 0.05·cost_b`` < B-first:
    ``cost_b + 0.95·cost_a`` per row) while the *actual* numbers favour
    B-first by more than 2x — the misdeclaration flips the order, not a
    knife-edge tie.  Values are laid out interleaved (a stride permutation),
    so any prefix of the input reveals the true selectivities.
    """

    row_count: int = 600
    stride: int = 37  # coprime with row_count: an interleaving permutation
    declared_selectivity_a: float = 0.05
    actual_selectivity_a: float = 0.95
    declared_selectivity_b: float = 0.95
    actual_selectivity_b: float = 0.05
    cost_a_seconds: float = 0.001
    cost_b_seconds: float = 0.0005
    network: NetworkConfig = field(default_factory=NetworkConfig.paper_symmetric)

    def __post_init__(self) -> None:
        import math as _math

        if self.stride <= 1 or _math.gcd(self.stride, self.row_count) != 1:
            raise ValueError("stride must be > 1 and coprime with row_count")

    @property
    def sql(self) -> str:
        threshold_a = self.actual_selectivity_a * self.row_count - 1
        threshold_b = self.actual_selectivity_b * self.row_count - 1
        return (
            f"SELECT T.K FROM T WHERE ProbeA(T.V) <= {threshold_a:g} "
            f"AND ProbeB(T.V) <= {threshold_b:g}"
        )

    @property
    def committed_udf_order(self) -> tuple:
        """The order the enumerator commits to, believing the declarations."""
        return ("probea", "probeb")

    @property
    def oracle_udf_order(self) -> tuple:
        """The order an oracle (knowing the actual selectivities) chooses."""
        return ("probeb", "probea")

    def build_database(self, statistics=None):
        """A fresh database with the table and both probe UDFs registered."""
        from repro.server.engine import Database
        from repro.relational.types import FLOAT, INTEGER

        db = Database(network=self.network, statistics=statistics)
        rows = [
            [index, float((index * self.stride) % self.row_count)]
            for index in range(self.row_count)
        ]
        db.create_table("T", [("K", INTEGER), ("V", FLOAT)], rows=rows)
        db.register_client_udf(
            "ProbeA",
            lambda value: value,
            selectivity=self.declared_selectivity_a,
            cost_per_call_seconds=self.cost_a_seconds,
        )
        db.register_client_udf(
            "ProbeB",
            lambda value: value,
            selectivity=self.declared_selectivity_b,
            cost_per_call_seconds=self.cost_b_seconds,
        )
        return db

    def replan_policy(self):
        """A one-migration policy: probe, decide once, drain the tail.

        One migration (or one confirming keep) settles the controller, so
        the segmentation overhead is bounded to the probe prefix whether the
        declarations turn out wrong or right.
        """
        from repro.adaptive.reoptimizer import ReOptimizationPolicy

        return ReOptimizationPolicy(max_replans=1, confirmation_boundaries=1)

    def describe(self) -> str:
        return (
            f"ProbeA declared S={self.declared_selectivity_a:g} actual "
            f"{self.actual_selectivity_a:g}, ProbeB declared "
            f"S={self.declared_selectivity_b:g} actual "
            f"{self.actual_selectivity_b:g}: committed order "
            f"{list(self.committed_udf_order)}, oracle "
            f"{list(self.oracle_udf_order)} ({self.network.name})"
        )


def underestimated_selectivity_scenario(**overrides) -> MisestimatedSelectivityScenario:
    """Declared 0.1, actual 0.9: the plan commits CSJ, semi-join is the oracle.

    The arguments are a small fraction of a wide record and the result is
    tiny, so the client-site join's return traffic is dominated by the wide
    non-argument payload: shipping nine of ten extended records back over the
    slow uplink (what the actual 0.9 forces) loses to the semi-join's bare
    results.
    """
    overrides.setdefault("declared_selectivity", 0.1)
    overrides.setdefault("actual_selectivity", 0.9)
    overrides.setdefault("argument_fraction", 0.2)
    overrides.setdefault("result_bytes", 100)
    overrides.setdefault("input_record_bytes", 1000)
    return MisestimatedSelectivityScenario(**overrides)
