"""Synthetic relations and UDFs with controllable sizes and selectivities.

The paper's Section 4 experiments use relations of fixed-size opaque data
objects and UDFs with declared result sizes; selectivity is controlled
exactly.  The helpers here build those ingredients deterministically:

* data objects carry a ``seed`` (0, 1, 2, ...) so equal arguments compare
  equal, duplicates can be generated exactly, and "the first ``S`` fraction
  of seeds passes" gives an exact selectivity;
* UDFs derive their result's seed from the argument's seed, so duplicate
  arguments produce duplicate results (a property the semi-join relies on).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.client.registry import UdfRegistry
from repro.client.udf import UdfSite
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import BOOLEAN, DATA_OBJECT, INTEGER, DataObject


def make_object_relation(
    name: str,
    row_count: int,
    object_size: int,
    column_name: str = "DataObject",
    distinct_fraction: float = 1.0,
) -> Table:
    """A relation of one DATA_OBJECT column (the Figure 6 ``Relation``).

    ``distinct_fraction`` < 1 repeats seeds so that only that fraction of the
    rows carry distinct argument values (the paper's ``D``).
    """
    schema = Schema([Column(column_name, DATA_OBJECT)])
    table = Table(name, schema)
    distinct = max(1, int(round(row_count * distinct_fraction)))
    for index in range(row_count):
        table.insert([DataObject(object_size, seed=index % distinct)])
    return table


def interleaving_stride(row_count: int) -> int:
    """A stride coprime to ``row_count`` near the golden ratio point.

    Walking seeds as ``(index * stride) % row_count`` yields a low-discrepancy
    permutation: every prefix of the relation carries approximately the same
    fraction of predicate-passing seeds as the whole — the property mid-query
    selectivity observation needs to see the true selectivity early.
    """
    if row_count <= 2:
        return 1
    stride = max(1, int(round(row_count * 0.618)))
    while math.gcd(stride, row_count) != 1:
        stride += 1
    return stride


def make_udf_relation(
    name: str,
    row_count: int,
    argument_size: int,
    non_argument_size: int,
    distinct_fraction: float = 1.0,
    interleaved: bool = False,
) -> Table:
    """The two-column relation of the Figure 7 query.

    ``Argument`` holds the UDF argument objects (size ``A * I``);
    ``NonArgument`` holds the remaining payload (size ``(1 - A) * I``).  The
    non-argument column always has a distinct seed so that argument
    duplicates are *not* tuple duplicates, matching the paper's distinction.

    With ``interleaved=True`` the argument seeds are laid out in a
    low-discrepancy (stride) order instead of ascending, so predicate-passing
    rows are spread uniformly through the relation rather than clustered at
    the front.  The overall seed *multiset* — and therefore every selectivity
    and duplicate property — is unchanged; only the row order differs.
    """
    schema = Schema([Column("Argument", DATA_OBJECT), Column("NonArgument", DATA_OBJECT)])
    table = Table(name, schema)
    distinct = max(1, int(round(row_count * distinct_fraction)))
    stride = interleaving_stride(row_count) if interleaved else 1
    for index in range(row_count):
        position = (index * stride) % row_count if interleaved else index
        table.insert(
            [
                DataObject(argument_size, seed=position % distinct),
                DataObject(non_argument_size, seed=index),
            ]
        )
    return table


def register_identity_udf(
    registry: UdfRegistry,
    name: str = "EchoObject",
    result_size: int = 1000,
    cost_per_call_seconds: float = 0.001,
    replace: bool = False,
):
    """A UDF that returns a data object of ``result_size`` derived from its argument.

    This is the Figure 6 UDF: "a simple function that returned another object
    of the same size" (use ``result_size`` equal to the argument size for the
    exact setup).
    """

    def echo(argument: DataObject) -> DataObject:
        return argument.derive(result_size)

    return registry.register_function(
        name,
        echo,
        site=UdfSite.CLIENT,
        result_dtype=DATA_OBJECT,
        result_size_bytes=result_size,
        cost_per_call_seconds=cost_per_call_seconds,
        description=f"returns a {result_size}-byte object derived from the argument",
        replace=replace,
    )


def register_sized_udf(
    registry: UdfRegistry,
    name: str = "Analyze",
    result_size: int = 1000,
    cost_per_call_seconds: float = 0.001,
    selectivity: float = 0.5,
    replace: bool = False,
):
    """The Figure 7 ``UDF2``: takes an object, returns a result of known size.

    The result's seed equals the argument's seed, so a comparison on the
    result column selects exactly the arguments whose seed falls below a
    threshold — the mechanism the selectivity sweeps use.
    """

    def analyze(argument: DataObject) -> DataObject:
        return DataObject(result_size, seed=argument.seed)

    return registry.register_function(
        name,
        analyze,
        site=UdfSite.CLIENT,
        result_dtype=DATA_OBJECT,
        result_size_bytes=result_size,
        cost_per_call_seconds=cost_per_call_seconds,
        selectivity=selectivity,
        description=f"returns a {result_size}-byte analysis result",
        replace=replace,
    )


def register_threshold_udf(
    registry: UdfRegistry,
    name: str = "Passes",
    selectivity: float = 0.5,
    population: int = 100,
    cost_per_call_seconds: float = 0.0005,
    replace: bool = False,
):
    """The Figure 7 ``UDF1``: a boolean predicate UDF of exact selectivity.

    Arguments whose seed is below ``selectivity * population`` pass.  With
    seeds 0..population-1 this yields the selectivity exactly.
    """
    threshold = selectivity * population

    def passes(argument: DataObject) -> bool:
        return argument.seed < threshold

    return registry.register_function(
        name,
        passes,
        site=UdfSite.CLIENT,
        result_dtype=BOOLEAN,
        result_size_bytes=1,
        cost_per_call_seconds=cost_per_call_seconds,
        selectivity=selectivity,
        description=f"boolean predicate UDF with selectivity {selectivity:g}",
        replace=replace,
    )


@dataclass
class SyntheticWorkload:
    """A bundled synthetic workload: relation + UDF registry + bookkeeping.

    ``selectivity_threshold_seed`` is the seed value below which rows pass the
    pushable predicate; with seeds 0..row_count-1 and distinct_fraction 1 the
    selectivity is exact.

    ``selectivity`` is the *actual* selectivity the data realises.
    ``declared_selectivity``, when set, is what the UDF *declares* to the
    planner instead — the misestimation scenarios set the two apart so a
    plan committed from the declaration is provably wrong at runtime.
    ``interleaved`` spreads passing rows uniformly through the relation (same
    multiset, different order) so any prefix reveals the true selectivity.
    """

    row_count: int = 100
    input_record_bytes: int = 1000
    argument_fraction: float = 0.5
    result_bytes: int = 1000
    selectivity: float = 0.5
    distinct_fraction: float = 1.0
    udf_cost_seconds: float = 0.001
    relation_name: str = "Relation"
    udf_name: str = "Analyze"
    declared_selectivity: Optional[float] = None
    interleaved: bool = False

    def __post_init__(self) -> None:
        self.argument_size = int(round(self.input_record_bytes * self.argument_fraction))
        self.non_argument_size = self.input_record_bytes - self.argument_size

    def build_table(self) -> Table:
        return make_udf_relation(
            self.relation_name,
            row_count=self.row_count,
            argument_size=self.argument_size,
            non_argument_size=self.non_argument_size,
            distinct_fraction=self.distinct_fraction,
            interleaved=self.interleaved,
        )

    def build_registry(self) -> UdfRegistry:
        registry = UdfRegistry()
        register_sized_udf(
            registry,
            name=self.udf_name,
            result_size=self.result_bytes,
            cost_per_call_seconds=self.udf_cost_seconds,
            selectivity=(
                self.declared_selectivity
                if self.declared_selectivity is not None
                else self.selectivity
            ),
        )
        return registry

    @property
    def selectivity_threshold_seed(self) -> int:
        distinct = max(1, int(round(self.row_count * self.distinct_fraction)))
        return int(round(self.selectivity * distinct))

    @property
    def result_column_name(self) -> str:
        return f"{self.udf_name}_result"
