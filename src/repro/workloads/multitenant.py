"""Canonical multi-tenant scenarios: mixed point/bulk traffic on one trunk.

The single-query experiments answer "which strategy is fastest for *this*
query"; the multi-tenant scenarios answer the production question the paper
leaves open: what happens when many clients run those strategies *at once*
over one shared connection.  The canonical mix is deliberately adversarial —
a population of cheap point queries sharing the trunk with one or more bulk
client-site-join sessions — because that is where FIFO trunks and unbounded
admission destroy tail latency.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.strategies import ExecutionStrategy
from repro.network.topology import NetworkConfig
from repro.relational.types import FLOAT, STRING, TIME_SERIES, TimeSeries
from repro.server.engine import Database
from repro.tenancy.driver import (
    OpenLoopWorkload,
    QuerySpec,
    SessionWorkload,
    Workload,
)

#: A modest shared trunk: fast enough that point queries are sub-second when
#: alone, slow enough that one bulk session visibly congests it.
DEFAULT_NETWORK = NetworkConfig.symmetric(200_000.0, latency=0.01, name="shared-trunk")


def make_tenant_database(
    network: Optional[NetworkConfig] = None,
    point_rows: int = 24,
    bulk_rows: int = 240,
    point_series: int = 3,
    bulk_series: int = 3,
) -> Database:
    """A database with a small point-query table and a large bulk table.

    Both carry a time-series column analysed by a client-site UDF, so every
    query in the mix exercises the client-site execution strategies over the
    shared trunk.  ``bulk_series`` controls how many observations each
    History row carries (8 bytes each): at a few hundred points per row a
    bulk client-site join ships hundreds of kilobytes and visibly saturates
    the default trunk, which is what the contention benchmarks need.
    """
    db = Database(network=network if network is not None else DEFAULT_NETWORK)
    db.create_table(
        "Quotes",
        [("Name", STRING), ("Series", TIME_SERIES)],
        rows=[
            [
                f"Q{index}",
                TimeSeries([10 + index + step for step in range(point_series)]),
            ]
            for index in range(point_rows)
        ],
    )
    db.create_table(
        "History",
        [("Name", STRING), ("Series", TIME_SERIES)],
        rows=[
            [
                f"H{index}",
                TimeSeries(
                    [5 + (index + step) % 40 for step in range(bulk_series)]
                ),
            ]
            for index in range(bulk_rows)
        ],
    )
    db.register_client_udf(
        "Score",
        lambda series: sum(series) / len(series),
        result_dtype=FLOAT,
        result_size_bytes=8,
        cost_per_call_seconds=0.0005,
        selectivity=0.5,
    )
    return db


POINT_SQL = "SELECT Q.Name FROM Quotes Q WHERE Score(Q.Series) > 15"
BULK_SQL = "SELECT H.Name FROM History H WHERE Score(H.Series) > 10"


def point_query_spec(
    strategy: ExecutionStrategy = ExecutionStrategy.SEMI_JOIN, **options
) -> QuerySpec:
    return QuerySpec(
        POINT_SQL, label="point", options={"strategy": strategy, **options}
    )


def bulk_query_spec(
    strategy: ExecutionStrategy = ExecutionStrategy.CLIENT_SITE_JOIN, **options
) -> QuerySpec:
    return QuerySpec(BULK_SQL, label="bulk", options={"strategy": strategy, **options})


def point_sessions(
    count: int,
    tenant_prefix: str = "point",
    queries_per_session: int = 2,
    think_time_seconds: float = 0.1,
    seed: int = 0,
) -> List[Workload]:
    """``count`` closed-loop sessions of cheap point queries, seeded jitter."""
    spec = point_query_spec()
    return [
        SessionWorkload(
            tenant_id=f"{tenant_prefix}{index}",
            queries=[spec],
            repeat=queries_per_session,
            think_time_seconds=think_time_seconds,
            jitter_fraction=0.5,
            seed=seed + index,
        )
        for index in range(count)
    ]


def bulk_session(
    tenant_id: str = "bulk",
    queries: int = 2,
    seed: int = 1000,
    **options,
) -> Workload:
    """One closed-loop bulk session that hogs the trunk when unchecked."""
    return SessionWorkload(
        tenant_id=tenant_id,
        queries=[bulk_query_spec(**options)],
        repeat=queries,
        think_time_seconds=0.0,
        seed=seed,
    )


def mixed_traffic(
    point_count: int = 8,
    bulk_count: int = 1,
    queries_per_session: int = 2,
    seed: int = 0,
) -> List[Workload]:
    """The canonical adversarial mix: many point sessions + bulk session(s)."""
    workloads: List[Workload] = list(
        point_sessions(
            point_count, queries_per_session=queries_per_session, seed=seed
        )
    )
    for index in range(bulk_count):
        workloads.append(bulk_session(tenant_id=f"bulk{index}", seed=seed + 1000 + index))
    return workloads


def poisson_point_arrivals(
    count: int,
    rate_per_second: float = 4.0,
    queries_per_session: int = 3,
    seed: int = 0,
) -> List[Workload]:
    """``count`` open-loop Poisson sessions of point queries."""
    spec = point_query_spec()
    return [
        OpenLoopWorkload(
            tenant_id=f"open{index}",
            queries=[spec],
            repeat=queries_per_session,
            arrival_rate_per_second=rate_per_second,
            seed=seed + index,
        )
        for index in range(count)
    ]
