"""Simulation resources: bounded FIFO stores.

A :class:`Store` is the synchronisation primitive used throughout the
execution strategies:

* the *pipeline buffer* between the semi-join sender and receiver is a store
  whose capacity is the pipeline concurrency factor (Section 3.1.2);
* mailboxes at each end of a channel are unbounded stores that messages are
  delivered into.

``put`` blocks (the putting process waits) while the store is full; ``get``
blocks while it is empty.  Both are FIFO, preserving stream order.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Tuple

from repro.errors import SimulationError
from repro.network.events import Event


class Store:
    """A bounded FIFO buffer usable from simulation processes."""

    def __init__(self, simulator: "Simulator", capacity: float = math.inf, name: str = "") -> None:  # noqa: F821
        if capacity <= 0:
            raise SimulationError("Store capacity must be positive")
        self.simulator = simulator
        self.capacity = capacity
        self.name = name or "Store"
        self._items: Deque[Any] = deque()
        self._put_waiters: Deque[Tuple[Event, Any]] = deque()
        self._get_waiters: Deque[Event] = deque()
        # Instrumentation: peak occupancy tells us the effective pipeline
        # concurrency actually reached during a run.
        self.peak_occupancy = 0
        self.total_puts = 0
        self.total_gets = 0

    # -- operations -----------------------------------------------------------------

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` has entered the store."""
        event = Event(self.simulator, name=f"{self.name}.put")
        self._put_waiters.append((event, item))
        self._dispatch()
        return event

    def get(self) -> Event:
        """Return an event that fires with the next item once one is available."""
        event = Event(self.simulator, name=f"{self.name}.get")
        self._get_waiters.append(event)
        self._dispatch()
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if len(self._items) >= self.capacity and not self._get_waiters:
            return False
        self.put(item)
        return True

    def grow_capacity(self, capacity: float) -> None:
        """Raise the capacity to ``capacity`` (never shrinks), waking putters.

        Used by adaptive executions whose batch size — and hence the pipeline
        window needed for deadlock freedom — grows mid-run.
        """
        if capacity > self.capacity:
            self.capacity = capacity
            self._dispatch()

    # -- introspection ----------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return len(self._items)

    @property
    def waiting_putters(self) -> int:
        return len(self._put_waiters)

    @property
    def waiting_getters(self) -> int:
        return len(self._get_waiters)

    # -- internal ------------------------------------------------------------------------

    def _dispatch(self) -> None:
        """Move items between waiters and the buffer until no progress is possible."""
        progress = True
        while progress:
            progress = False
            if self._put_waiters and len(self._items) < self.capacity:
                event, item = self._put_waiters.popleft()
                self._items.append(item)
                self.total_puts += 1
                self.peak_occupancy = max(self.peak_occupancy, len(self._items))
                event.succeed()
                progress = True
            if self._get_waiters and self._items:
                event = self._get_waiters.popleft()
                item = self._items.popleft()
                self.total_gets += 1
                event.succeed(item)
                progress = True

    def __repr__(self) -> str:
        return (
            f"Store({self.name!r}, occupancy={len(self._items)}, "
            f"capacity={self.capacity}, peak={self.peak_occupancy})"
        )
