"""Messages exchanged between the server and the client runtime.

A message carries an opaque ``payload`` plus an explicit ``size_bytes`` used
for link-time accounting.  The size is computed by the sender from the
serialized sizes of the values being shipped (argument columns, whole
records, UDF results), so link occupancy reflects exactly the byte counts the
paper's cost model reasons about.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: Fixed per-message framing overhead, in bytes (headers, sequence numbers).
#: Kept small so the experiments are dominated by payload sizes, as in the
#: paper, but non-zero so per-message costs exist at all.
MESSAGE_OVERHEAD_BYTES = 16

_sequence = itertools.count(1)


class MessageKind(enum.Enum):
    """What a message carries, used for routing at the receiving runtime."""

    UDF_ARGUMENTS = "udf_arguments"  # semi-join: argument columns only
    UDF_RESULT = "udf_result"  # semi-join: results only
    RECORDS = "records"  # client-site join: whole records downlink
    RECORDS_WITH_RESULTS = "records_with_results"  # client-site join uplink
    FINAL_RESULTS = "final_results"  # result delivery to the client
    CONTROL = "control"  # open/close/flush markers
    ERROR = "error"  # client-side failure notification


@dataclass
class Message:
    """A single unit of transfer over a link.

    ``row_count`` records how many logical rows (argument tuples, records or
    results) the payload carries; batch-sized messages amortise the fixed
    :data:`MESSAGE_OVERHEAD_BYTES` over all of them.  Control and error
    messages carry zero rows.
    """

    kind: MessageKind
    payload: Any
    payload_bytes: int
    sequence: int = field(default_factory=lambda: next(_sequence))
    sender: str = ""
    description: str = ""
    row_count: int = 0

    @property
    def size_bytes(self) -> int:
        """Total wire size, including framing overhead."""
        return self.payload_bytes + MESSAGE_OVERHEAD_BYTES

    @property
    def overhead_bytes_per_row(self) -> float:
        """The framing overhead share charged to each row of the payload."""
        return MESSAGE_OVERHEAD_BYTES / self.row_count if self.row_count else float(
            MESSAGE_OVERHEAD_BYTES
        )

    def __repr__(self) -> str:
        return (
            f"Message(#{self.sequence} {self.kind.value}, {self.size_bytes}B"
            f"{', ' + self.description if self.description else ''})"
        )


def batch_message(
    kind: MessageKind,
    payload: Any,
    payload_bytes: int,
    row_count: int,
    sender: str = "",
    description: str = "",
) -> Message:
    """A batch-sized message carrying ``row_count`` rows in one frame."""
    return Message(
        kind=kind,
        payload=payload,
        payload_bytes=payload_bytes,
        sender=sender,
        description=description or f"{row_count} rows",
        row_count=row_count,
    )


def control_message(description: str, sender: str = "") -> Message:
    """A zero-payload control message (e.g. end-of-stream)."""
    return Message(
        kind=MessageKind.CONTROL,
        payload=None,
        payload_bytes=0,
        sender=sender,
        description=description,
    )


def error_message(exception: BaseException, sender: str = "") -> Message:
    """A message signalling a remote failure; the exception rides along."""
    return Message(
        kind=MessageKind.ERROR,
        payload=exception,
        payload_bytes=len(str(exception)),
        sender=sender,
        description=type(exception).__name__,
    )


#: Sentinel description used by control messages that terminate a stream.
END_OF_STREAM = "end-of-stream"


def end_of_stream(sender: str = "") -> Message:
    return control_message(END_OF_STREAM, sender=sender)


def is_end_of_stream(message: Optional[Message]) -> bool:
    return (
        message is not None
        and message.kind is MessageKind.CONTROL
        and message.description == END_OF_STREAM
    )
