"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock and the event queue.  Events are
processed in non-decreasing time order; ties are broken by scheduling order,
which makes every simulation fully deterministic — a property the
reproduction relies on so that every figure regenerates identically from run
to run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.network.events import Event, Process, Timeout


class Simulator:
    """A deterministic discrete-event simulator."""

    def __init__(self) -> None:
        self._now = 0.0
        self._sequence = 0
        # Heap entries: (time, sequence, kind, payload).  kind 0 = event,
        # kind 1 = bare callback; sequence preserves FIFO order among ties.
        self._queue: List[Tuple[float, int, int, Any]] = []
        self.events_processed = 0

    # -- clock ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # -- scheduling (internal API used by events) -------------------------------

    def _schedule(self, delay: float, event: Event) -> None:
        if delay < 0:
            raise SimulationError("cannot schedule an event in the past")
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, 0, event))

    def _schedule_callback(self, callback: Callable[[Event], None], event: Event) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (self._now, self._sequence, 1, (callback, event)))

    # -- public factory helpers ---------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create an untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a coroutine process; returns the process (itself an event)."""
        return Process(self, generator, name=name)

    # -- execution ----------------------------------------------------------------

    def step(self) -> None:
        """Process the single next scheduled entry."""
        if not self._queue:
            raise SimulationError("no events scheduled")
        time, _, kind, payload = heapq.heappop(self._queue)
        if time < self._now:
            raise SimulationError("event queue went backwards in time")
        self._now = time
        self.events_processed += 1
        if kind == 0:
            payload._process()
        else:
            callback, event = payload
            callback(event)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue empties or the clock reaches ``until``.

        Returns the final simulation time.
        """
        while self._queue:
            next_time = self._queue[0][0]
            if until is not None and next_time > until:
                self._now = until
                return self._now
            self.step()
        return self._now

    def run_process(self, generator: Generator[Event, Any, Any], name: str = "") -> Any:
        """Start a process, run to completion, and return its result.

        Exceptions raised inside the process propagate to the caller.
        """
        process = self.process(generator, name=name)
        self.run()
        if not process.triggered:
            raise SimulationError(
                f"process {name or 'anonymous'!r} did not complete; "
                "it is likely blocked on an event that never fires (deadlock)"
            )
        if process._exception is not None:
            raise process._exception
        return process.value

    @property
    def pending_events(self) -> int:
        """Number of scheduled-but-unprocessed queue entries."""
        return len(self._queue)

    def peek_next_time(self) -> Optional[float]:
        """The time of the next scheduled entry, or ``None`` when idle.

        The multi-tenant traffic driver steps the shared simulation manually
        (it interleaves host-side query work between events); peeking lets it
        distinguish "quiescent" from "more simulated work pending" without
        disturbing the queue.
        """
        if not self._queue:
            return None
        return self._queue[0][0]

    def __repr__(self) -> str:
        return f"Simulator(now={self._now:.6f}, pending={len(self._queue)})"
