"""Directed network links with bandwidth and propagation latency.

A link serialises messages one at a time at its ``bandwidth`` (bytes per
second); a message then propagates for ``latency`` seconds before arriving at
the destination mailbox.  Because serialisation occupies the link but
propagation does not, multiple messages can be "in flight" concurrently —
exactly the behaviour that makes pipeline concurrency worthwhile in the paper
(Figure 2b): while one message propagates, the next is already being
transmitted.

A link's bandwidth may *drift* over simulated time via a piecewise-constant
``bandwidth_schedule`` — the mechanism behind the adaptive-runtime drift
scenarios, where the effective bandwidth a query observes differs from the
configured one and only runtime feedback can recover it.

A link may also delegate its serialisation to a shared *scheduler* (a trunk
shared by many sessions, see :mod:`repro.tenancy.fairqueue`): the link then
keeps its own per-session statistics and destination mailbox, but the actual
transmission order and timing are decided by the scheduler — FIFO or deficit
round robin across all the flows sharing the trunk.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import ChannelClosedError, SimulationError
from repro.network.events import Event
from repro.network.message import Message
from repro.network.resources import Store
from repro.network.stats import LinkStats


class Link:
    """A unidirectional link delivering messages into a destination store."""

    def __init__(
        self,
        simulator: "Simulator",  # noqa: F821
        name: str,
        bandwidth_bytes_per_sec: float,
        latency_seconds: float = 0.0,
        destination: Optional[Store] = None,
        bandwidth_schedule: Optional[Sequence[Tuple[float, float]]] = None,
        scheduler: Optional[object] = None,
        flow: Optional[str] = None,
    ) -> None:
        if bandwidth_bytes_per_sec <= 0:
            raise SimulationError("link bandwidth must be positive")
        if latency_seconds < 0:
            raise SimulationError("link latency must be non-negative")
        self.simulator = simulator
        self.name = name
        self.bandwidth = float(bandwidth_bytes_per_sec)
        self.latency = float(latency_seconds)
        self.destination = destination if destination is not None else Store(simulator, name=f"{name}.inbox")
        self.stats = LinkStats(name=name)
        #: A shared trunk scheduler (anything with ``submit(link, message)``):
        #: when set, this link's messages are serialised by the trunk instead
        #: of the link's private ``_free_at`` timeline.
        self.scheduler = scheduler
        #: The session flow this link's traffic is attributed to (tenancy).
        self.flow = flow
        self._free_at = 0.0
        self._closed = False
        #: Piecewise-constant drift: sorted ``(start_time, bandwidth)`` steps.
        #: Before the first step the base ``bandwidth`` applies.
        schedule = sorted(bandwidth_schedule) if bandwidth_schedule else []
        for _, value in schedule:
            if value <= 0:
                raise SimulationError("scheduled bandwidths must be positive")
        self._schedule: Tuple[Tuple[float, float], ...] = tuple(schedule)

    # -- transfer -----------------------------------------------------------------

    def bandwidth_at(self, time: float) -> float:
        """The link's bandwidth in effect at simulation time ``time``."""
        bandwidth = self.bandwidth
        for start, value in self._schedule:
            if time >= start:
                bandwidth = value
            else:
                break
        return bandwidth

    def transmission_time(self, message: Message, at_time: Optional[float] = None) -> float:
        """Seconds the link is occupied serialising ``message``."""
        time = at_time if at_time is not None else self.simulator.now
        return message.size_bytes / self.bandwidth_at(time)

    def send(self, message: Message) -> Event:
        """Ship ``message``; returns an event that fires when serialisation ends.

        The returned event lets the *sender* proceed as soon as the link is
        free again (it models the network card accepting the next message);
        delivery into the destination store happens ``latency`` seconds after
        serialisation completes.
        """
        if self._closed:
            raise ChannelClosedError(f"link {self.name!r} is closed")
        if self.scheduler is not None:
            return self.scheduler.submit(self, message)
        now = self.simulator.now
        start = max(now, self._free_at)
        transmission = self.transmission_time(message, at_time=start)
        finish_tx = start + transmission
        self._free_at = finish_tx

        self.stats.record(
            message, queued_for=start - now, transmission=transmission, flow=self.flow
        )

        # Event for the sender: the link has finished serialising the message.
        sender_event = Event(self.simulator, name=f"{self.name}.tx#{message.sequence}")
        sender_event.succeed(message, delay=finish_tx - now)

        # Delivery into the destination mailbox after propagation.
        arrival_delay = (finish_tx + self.latency) - now
        delivery_event = Event(self.simulator, name=f"{self.name}.rx#{message.sequence}")
        delivery_event.add_callback(lambda event: self.destination.put(event.value))
        delivery_event.succeed(message, delay=arrival_delay)

        return sender_event

    def close(self) -> None:
        """Refuse any further sends (used for failure-injection tests)."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    # -- introspection --------------------------------------------------------------

    @property
    def bytes_transferred(self) -> int:
        return self.stats.total_bytes

    @property
    def busy_until(self) -> float:
        """Simulation time at which the link finishes its current backlog."""
        if self.scheduler is not None:
            return getattr(self.scheduler, "busy_until", self._free_at)
        return self._free_at

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of elapsed time the link spent serialising messages."""
        elapsed = elapsed if elapsed is not None else self.simulator.now
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.stats.busy_seconds / elapsed)

    def __repr__(self) -> str:
        return (
            f"Link({self.name!r}, {self.bandwidth:g} B/s, latency={self.latency:g}s, "
            f"{self.stats.message_count} msgs, {self.stats.total_bytes} B)"
        )
