"""Named network configurations, including the paper's experimental setups.

All bandwidths are stored in **bytes per second** internally; the
constructors accept the more natural kilobits/megabits units used in the
paper ("28.8KBit phone connection", "10Mbit Ethernet", "N = 100").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.network.channel import Channel
from repro.network.simulator import Simulator

BITS_PER_BYTE = 8


def kilobits_per_second(value: float) -> float:
    """Convert kbit/s to bytes/s."""
    return value * 1000.0 / BITS_PER_BYTE


def megabits_per_second(value: float) -> float:
    """Convert Mbit/s to bytes/s."""
    return value * 1_000_000.0 / BITS_PER_BYTE


@dataclass(frozen=True)
class NetworkConfig:
    """A reusable description of the client/server connection.

    ``asymmetry`` (the paper's ``N``) is derived, not stored: it is the ratio
    of downlink to uplink bandwidth.

    ``downlink_schedule`` / ``uplink_schedule`` describe *bandwidth drift*:
    sorted ``(start_time_seconds, bandwidth_bytes_per_sec)`` steps applied
    piecewise-constantly during the simulation, with the base bandwidth in
    effect before the first step.  The base fields remain what a planner
    *believes* about the link; the schedule is what the link actually does —
    the gap the adaptive runtime subsystem exists to close.
    """

    downlink_bandwidth: float  # bytes per second, server -> client
    uplink_bandwidth: float  # bytes per second, client -> server
    latency: float = 0.05  # one-way propagation delay in seconds
    name: str = "custom"
    downlink_schedule: Tuple[Tuple[float, float], ...] = ()
    uplink_schedule: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.downlink_bandwidth <= 0 or self.uplink_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        for schedule in (self.downlink_schedule, self.uplink_schedule):
            for _, bandwidth in schedule:
                if bandwidth <= 0:
                    raise ValueError("scheduled bandwidths must be positive")

    @property
    def drifts(self) -> bool:
        """Whether either direction's bandwidth changes over time."""
        return bool(self.downlink_schedule or self.uplink_schedule)

    def with_drift(
        self,
        downlink_schedule: Optional[Tuple[Tuple[float, float], ...]] = None,
        uplink_schedule: Optional[Tuple[Tuple[float, float], ...]] = None,
        name: Optional[str] = None,
    ) -> "NetworkConfig":
        """A copy of this configuration with bandwidth-drift schedules.

        An omitted (``None``) direction keeps its existing schedule — layering
        uplink drift onto a config that already drifts downlink must not
        silently erase the downlink schedule.  Pass an explicit empty tuple to
        clear a direction.
        """
        from dataclasses import replace

        return replace(
            self,
            downlink_schedule=(
                self.downlink_schedule
                if downlink_schedule is None
                else tuple(sorted(downlink_schedule))
            ),
            uplink_schedule=(
                self.uplink_schedule
                if uplink_schedule is None
                else tuple(sorted(uplink_schedule))
            ),
            name=name if name is not None else f"{self.name}+drift",
        )

    @property
    def asymmetry(self) -> float:
        """The paper's ``N`` parameter (downlink / uplink bandwidth)."""
        return self.downlink_bandwidth / self.uplink_bandwidth

    @property
    def bottleneck_bandwidth(self) -> float:
        return min(self.downlink_bandwidth, self.uplink_bandwidth)

    def build_channel(
        self,
        simulator: Simulator,
        name: str = "channel",
        downlink_scheduler=None,
        uplink_scheduler=None,
        flow: Optional[str] = None,
    ) -> Channel:
        """Instantiate a channel for this configuration on ``simulator``.

        ``downlink_scheduler``/``uplink_scheduler`` attach the channel's
        links to shared trunk schedulers (multi-tenant fair queueing), and
        ``flow`` names the session all of this channel's traffic is
        attributed to on those trunks.
        """
        return Channel(
            simulator,
            downlink_bandwidth=self.downlink_bandwidth,
            uplink_bandwidth=self.uplink_bandwidth,
            latency=self.latency,
            name=name,
            downlink_schedule=self.downlink_schedule or None,
            uplink_schedule=self.uplink_schedule or None,
            downlink_scheduler=downlink_scheduler,
            uplink_scheduler=uplink_scheduler,
            flow=flow,
        )

    # -- presets -----------------------------------------------------------------------

    @classmethod
    def symmetric(cls, bandwidth: float, latency: float = 0.05, name: str = "symmetric") -> "NetworkConfig":
        """A symmetric connection with the given bandwidth in bytes/s."""
        return cls(bandwidth, bandwidth, latency, name)

    @classmethod
    def asymmetric(
        cls,
        downlink_bandwidth: float,
        asymmetry: float,
        latency: float = 0.05,
        name: str = "asymmetric",
    ) -> "NetworkConfig":
        """A connection where the uplink is ``asymmetry`` times slower."""
        if asymmetry <= 0:
            raise ValueError("asymmetry must be positive")
        return cls(downlink_bandwidth, downlink_bandwidth / asymmetry, latency, name)

    @classmethod
    def paper_modem(cls, latency: float = 0.1) -> "NetworkConfig":
        """The paper's 28.8 kbit/s symmetric phone connection (Section 4)."""
        bandwidth = kilobits_per_second(28.8)
        return cls(bandwidth, bandwidth, latency, name="modem-28.8k")

    @classmethod
    def paper_symmetric(cls, latency: float = 0.05) -> "NetworkConfig":
        """Symmetric setting used for Figures 8 and 10 (modem-class link)."""
        bandwidth = kilobits_per_second(28.8)
        return cls(bandwidth, bandwidth, latency, name="paper-symmetric")

    @classmethod
    def paper_asymmetric(cls, asymmetry: float = 100.0, latency: float = 0.05) -> "NetworkConfig":
        """Asymmetric setting of Figure 9: ~10 Mbit/s downlink, N = 100.

        The paper models a multiplexed 10 Mbit cable downlink with a
        28.8 kbit/s uplink, giving an effective N of roughly 100.
        """
        downlink = megabits_per_second(10.0) / 3.5  # multiplexed share
        return cls(downlink, downlink / asymmetry, latency, name=f"paper-asymmetric-N{asymmetry:g}")

    @classmethod
    def lan(cls, latency: float = 0.001) -> "NetworkConfig":
        """A fast symmetric LAN, useful to show when strategy choice stops mattering."""
        bandwidth = megabits_per_second(100.0)
        return cls(bandwidth, bandwidth, latency, name="lan-100M")

    def __str__(self) -> str:
        return (
            f"{self.name}: down {self.downlink_bandwidth:g} B/s, up {self.uplink_bandwidth:g} B/s, "
            f"latency {self.latency:g}s (N={self.asymmetry:g})"
        )
