"""A duplex client/server channel: a downlink and an uplink plus mailboxes.

The server sends on the *downlink* (server → client) and receives from the
*uplink* (client → server).  Each direction is an independent
:class:`~repro.network.link.Link`, so asymmetric connections (the paper's
cable-modem / ADSL scenario, ``N = downlink bandwidth / uplink bandwidth``)
fall out naturally.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ChannelClosedError
from repro.network.events import Event
from repro.network.link import Link
from repro.network.message import Message, MessageKind, batch_message
from repro.network.resources import Store
from repro.network.simulator import Simulator
from repro.network.stats import ChannelStats


class Channel:
    """A bidirectional connection between the server and one client."""

    def __init__(
        self,
        simulator: Simulator,
        downlink_bandwidth: float,
        uplink_bandwidth: float,
        latency: float = 0.0,
        name: str = "channel",
        downlink_schedule=None,
        uplink_schedule=None,
        downlink_scheduler=None,
        uplink_scheduler=None,
        flow: str = None,
    ) -> None:
        self.simulator = simulator
        self.name = name
        #: The session flow this channel's traffic is attributed to on shared
        #: (multi-tenant) trunks; ``None`` for a private single-query channel.
        self.flow = flow
        #: Messages sent by the server arrive here (read by the client runtime).
        self.client_inbox = Store(simulator, name=f"{name}.client_inbox")
        #: Messages sent by the client arrive here (read by the server).
        self.server_inbox = Store(simulator, name=f"{name}.server_inbox")
        self.downlink = Link(
            simulator,
            name=f"{name}.downlink",
            bandwidth_bytes_per_sec=downlink_bandwidth,
            latency_seconds=latency,
            destination=self.client_inbox,
            bandwidth_schedule=downlink_schedule,
            scheduler=downlink_scheduler,
            flow=flow,
        )
        self.uplink = Link(
            simulator,
            name=f"{name}.uplink",
            bandwidth_bytes_per_sec=uplink_bandwidth,
            latency_seconds=latency,
            destination=self.server_inbox,
            bandwidth_schedule=uplink_schedule,
            scheduler=uplink_scheduler,
            flow=flow,
        )
        self._closed = False

    # -- sending ---------------------------------------------------------------------

    def send_to_client(self, message: Message) -> Event:
        """Server → client.  Returns the sender-side completion event."""
        self._ensure_open()
        message.sender = message.sender or "server"
        return self.downlink.send(message)

    def send_to_server(self, message: Message) -> Event:
        """Client → server.  Returns the sender-side completion event."""
        self._ensure_open()
        message.sender = message.sender or "client"
        return self.uplink.send(message)

    def send_batch_to_client(
        self,
        kind: MessageKind,
        payload: Any,
        payload_bytes: int,
        row_count: int,
        description: str = "",
    ) -> Event:
        """Server → client shipment of ``row_count`` rows in one frame."""
        return self.send_to_client(
            batch_message(kind, payload, payload_bytes, row_count, description=description)
        )

    def send_batch_to_server(
        self,
        kind: MessageKind,
        payload: Any,
        payload_bytes: int,
        row_count: int,
        description: str = "",
    ) -> Event:
        """Client → server shipment of ``row_count`` rows in one frame."""
        return self.send_to_server(
            batch_message(kind, payload, payload_bytes, row_count, description=description)
        )

    # -- receiving --------------------------------------------------------------------

    def receive_at_client(self) -> Event:
        """Event yielding the next message in the client's inbox."""
        return self.client_inbox.get()

    def receive_at_server(self) -> Event:
        """Event yielding the next message in the server's inbox."""
        return self.server_inbox.get()

    # -- lifecycle --------------------------------------------------------------------

    def close(self) -> None:
        """Close both directions; further sends raise :class:`ChannelClosedError`."""
        self._closed = True
        self.downlink.close()
        self.uplink.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise ChannelClosedError(f"channel {self.name!r} is closed")

    # -- properties ------------------------------------------------------------------

    @property
    def asymmetry(self) -> float:
        """The paper's ``N``: downlink bandwidth divided by uplink bandwidth."""
        return self.downlink.bandwidth / self.uplink.bandwidth

    @property
    def round_trip_latency(self) -> float:
        return self.downlink.latency + self.uplink.latency

    @property
    def stats(self) -> ChannelStats:
        return ChannelStats(downlink=self.downlink.stats, uplink=self.uplink.stats)

    def round_trip_time(self, request_bytes: int, response_bytes: int) -> float:
        """Unloaded round-trip time for a request/response pair of given sizes."""
        down = request_bytes / self.downlink.bandwidth + self.downlink.latency
        up = response_bytes / self.uplink.bandwidth + self.uplink.latency
        return down + up

    def __repr__(self) -> str:
        return (
            f"Channel({self.name!r}, down={self.downlink.bandwidth:g} B/s, "
            f"up={self.uplink.bandwidth:g} B/s, latency={self.downlink.latency:g}s)"
        )
