"""Events and processes for the discrete-event simulation kernel.

The kernel follows the familiar SimPy structure, reduced to what the
execution strategies need:

* :class:`Event` — a one-shot occurrence with a value (or an exception) and a
  list of callbacks invoked when the simulator processes it;
* :class:`Timeout` — an event that fires after a simulated delay;
* :class:`Process` — a generator-based coroutine; yielding an event suspends
  the process until the event fires.  A process is itself an event that fires
  when the generator returns, so processes can wait on each other.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.errors import SimulationError

_UNSET = object()


class Event:
    """A one-shot simulation event."""

    def __init__(self, simulator: "Simulator", name: str = "") -> None:  # noqa: F821
        self.simulator = simulator
        self.name = name or type(self).__name__
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = _UNSET
        self._exception: Optional[BaseException] = None
        self.triggered = False
        self.processed = False

    # -- state ------------------------------------------------------------------

    @property
    def value(self) -> Any:
        if self._value is _UNSET:
            raise SimulationError(f"event {self.name!r} has no value yet")
        return self._value

    @property
    def ok(self) -> bool:
        return self.triggered and self._exception is None

    # -- triggering ---------------------------------------------------------------

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Mark the event successful; callbacks run after ``delay`` sim-seconds."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} has already been triggered")
        self.triggered = True
        self._value = value
        self.simulator._schedule(delay, self)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Mark the event failed; the exception is re-raised in waiting processes."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail expects an exception instance")
        self.triggered = True
        self._exception = exception
        self._value = None
        self.simulator._schedule(delay, self)
        return self

    # -- callback plumbing ---------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when this event is processed.

        Registering on an already-processed event schedules the callback to
        run immediately (at the current simulation time), so late waiters do
        not deadlock.
        """
        if self.processed:
            self.simulator._schedule_callback(callback, self)
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        """Invoked by the simulator when the event's time has come."""
        if self.processed:
            raise SimulationError(f"event {self.name!r} processed twice")
        self.processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {self.name!r} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    def __init__(self, simulator: "Simulator", delay: float, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise SimulationError("Timeout delay must be non-negative")
        super().__init__(simulator, name=f"Timeout({delay:g})")
        self.delay = delay
        self.succeed(value, delay=delay)


class Process(Event):
    """A coroutine driven by the simulator.

    The wrapped generator yields :class:`Event` instances; the process is
    resumed with the event's value (or the event's exception is thrown into
    the generator).  When the generator returns, the process event succeeds
    with the generator's return value.
    """

    def __init__(
        self,
        simulator: "Simulator",  # noqa: F821
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(simulator, name=name or "Process")
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError("Process requires a generator (use a 'yield'-based function)")
        self._generator = generator
        self.target: Optional[Event] = None
        # Kick the process off at the current simulation time.
        bootstrap = Event(simulator, name=f"{self.name}:start")
        bootstrap.add_callback(self._resume)
        bootstrap.succeed(None)

    def _resume(self, event: Event) -> None:
        """Advance the generator after ``event`` fired."""
        try:
            if event._exception is not None:
                next_target = self._generator.throw(event._exception)
            else:
                next_target = self._generator.send(event._value if event._value is not _UNSET else None)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return

        if not isinstance(next_target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {next_target!r}; processes must yield events"
                )
            )
            return
        if next_target.simulator is not self.simulator:
            self.fail(SimulationError("process yielded an event from a different simulator"))
            return
        self.target = next_target
        next_target.add_callback(self._resume)
