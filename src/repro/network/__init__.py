"""Deterministic discrete-event network simulation substrate.

The paper's measurements were taken over real links (a 28.8 kbit/s modem and
a 10 Mbit/s Ethernet with emulated asymmetry).  This subpackage replaces
those links with a small, deterministic discrete-event simulator:

* :mod:`repro.network.simulator` / :mod:`repro.network.events` — a
  coroutine-based simulation kernel (processes, timeouts, events);
* :mod:`repro.network.resources` — bounded stores used for mailboxes and the
  semi-join pipeline buffer;
* :mod:`repro.network.link` — directed links with bandwidth and propagation
  latency, byte-accurate accounting;
* :mod:`repro.network.channel` — a duplex client/server channel (downlink +
  uplink) with mailboxes at both ends;
* :mod:`repro.network.topology` — named network configurations, including
  the paper's experimental setups;
* :mod:`repro.network.stats` — per-link and per-channel transfer statistics.
"""

from repro.network.simulator import Simulator
from repro.network.events import Event, Timeout, Process
from repro.network.resources import Store
from repro.network.message import Message, MessageKind
from repro.network.link import Link
from repro.network.channel import Channel
from repro.network.topology import NetworkConfig
from repro.network.stats import LinkStats, ChannelStats

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Store",
    "Message",
    "MessageKind",
    "Link",
    "Channel",
    "NetworkConfig",
    "LinkStats",
    "ChannelStats",
]
