"""Transfer statistics for links and channels.

Counters exist at two granularities: the per-link totals the cost model is
validated against, and — on shared (multi-tenant) links — per-*flow*
sub-counters keyed by the session that sent each message.  The per-flow
counters are what fair-queueing attribution and the tenancy fairness metrics
read; they always sum to the link totals when every message carries a flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.message import Message


@dataclass
class FlowStats:
    """Byte and timing accounting for one session flow on one link."""

    flow: str
    message_count: int = 0
    data_message_count: int = 0
    total_bytes: int = 0
    payload_bytes: int = 0
    rows_transferred: int = 0
    busy_seconds: float = 0.0
    queueing_seconds: float = 0.0

    def record(self, message: "Message", queued_for: float, transmission: float) -> None:
        self.message_count += 1
        if message.kind.value not in ("control", "error"):
            self.data_message_count += 1
        self.total_bytes += message.size_bytes
        self.payload_bytes += message.payload_bytes
        self.rows_transferred += message.row_count
        self.busy_seconds += transmission
        self.queueing_seconds += queued_for

    def merge(self, other: "FlowStats") -> "FlowStats":
        merged = FlowStats(flow=self.flow)
        merged.message_count = self.message_count + other.message_count
        merged.data_message_count = self.data_message_count + other.data_message_count
        merged.total_bytes = self.total_bytes + other.total_bytes
        merged.payload_bytes = self.payload_bytes + other.payload_bytes
        merged.rows_transferred = self.rows_transferred + other.rows_transferred
        merged.busy_seconds = self.busy_seconds + other.busy_seconds
        merged.queueing_seconds = self.queueing_seconds + other.queueing_seconds
        return merged

    @property
    def achieved_bandwidth(self) -> Optional[float]:
        """Bytes/second this flow achieved including time spent queued.

        On an uncontended link this equals the serialisation bandwidth; on a
        shared link it degrades with cross-traffic — the per-flow signal the
        contention-aware calibration plans with.
        """
        elapsed = self.busy_seconds + self.queueing_seconds
        if elapsed <= 0:
            return None
        return self.total_bytes / elapsed


@dataclass
class LinkStats:
    """Byte and timing accounting for one directed link."""

    name: str
    message_count: int = 0
    data_message_count: int = 0
    total_bytes: int = 0
    payload_bytes: int = 0
    rows_transferred: int = 0
    busy_seconds: float = 0.0
    queueing_seconds: float = 0.0
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Per-session-flow sub-counters, populated only for messages recorded
    #: with a ``flow`` (shared multi-tenant links tag every message).
    flows: Dict[str, FlowStats] = field(default_factory=dict)

    def record(
        self,
        message: "Message",
        queued_for: float,
        transmission: float,
        flow: Optional[str] = None,
    ) -> None:
        self.message_count += 1
        if message.kind.value not in ("control", "error"):
            self.data_message_count += 1
        self.total_bytes += message.size_bytes
        self.payload_bytes += message.payload_bytes
        self.rows_transferred += message.row_count
        self.busy_seconds += transmission
        self.queueing_seconds += queued_for
        kind = message.kind.value
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + message.size_bytes
        if flow is not None:
            counters = self.flows.get(flow)
            if counters is None:
                counters = self.flows[flow] = FlowStats(flow=flow)
            counters.record(message, queued_for=queued_for, transmission=transmission)

    @property
    def rows_per_message(self) -> float:
        """Average batching achieved on this link: rows per *data* message
        (control and error frames carry no rows and are excluded)."""
        return (
            self.rows_transferred / self.data_message_count if self.data_message_count else 0.0
        )

    def flow(self, name: str) -> FlowStats:
        """The named flow's counters (all-zero if the flow never sent)."""
        return self.flows.get(name, FlowStats(flow=name))

    def flow_bytes(self) -> Dict[str, int]:
        """Total bytes per flow, the fairness metrics' input."""
        return {name: counters.total_bytes for name, counters in self.flows.items()}

    def merge(self, other: "LinkStats") -> "LinkStats":
        merged = LinkStats(name=self.name)
        merged.message_count = self.message_count + other.message_count
        merged.data_message_count = self.data_message_count + other.data_message_count
        merged.total_bytes = self.total_bytes + other.total_bytes
        merged.payload_bytes = self.payload_bytes + other.payload_bytes
        merged.rows_transferred = self.rows_transferred + other.rows_transferred
        merged.busy_seconds = self.busy_seconds + other.busy_seconds
        merged.queueing_seconds = self.queueing_seconds + other.queueing_seconds
        for kind, value in list(self.bytes_by_kind.items()) + list(other.bytes_by_kind.items()):
            merged.bytes_by_kind[kind] = merged.bytes_by_kind.get(kind, 0) + value
        for source in (self.flows, other.flows):
            for name, counters in source.items():
                existing = merged.flows.get(name)
                if existing is None:
                    merged.flows[name] = counters.merge(FlowStats(flow=name))
                else:
                    merged.flows[name] = existing.merge(counters)
        return merged

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.message_count} msgs, {self.total_bytes} B, "
            f"busy {self.busy_seconds:.3f}s"
        )


@dataclass
class ChannelStats:
    """Combined statistics for a duplex channel (downlink + uplink)."""

    downlink: LinkStats
    uplink: LinkStats

    @property
    def total_bytes(self) -> int:
        return self.downlink.total_bytes + self.uplink.total_bytes

    @property
    def downlink_bytes(self) -> int:
        return self.downlink.total_bytes

    @property
    def uplink_bytes(self) -> int:
        return self.uplink.total_bytes

    def summary(self) -> str:
        return (
            f"downlink: {self.downlink.total_bytes} B in {self.downlink.message_count} msgs; "
            f"uplink: {self.uplink.total_bytes} B in {self.uplink.message_count} msgs"
        )


def jain_fairness_index(values: List[float]) -> float:
    """Jain's fairness index over per-flow allocations: 1.0 is perfectly fair.

    ``(sum x)^2 / (n * sum x^2)`` — equals ``1/n`` when one flow gets
    everything, 1.0 when all flows get the same share.

    Every flow that was active on the link counts towards ``n``, including
    fully *starved* flows whose allocation is zero: one bulk flow plus three
    starved flows scores 0.25, not 1.0.  (Negative inputs are clamped to
    zero; an all-zero allocation is vacuously fair.)
    """
    allocations = [max(0.0, value) for value in values]
    if not allocations:
        return 1.0
    total = sum(allocations)
    squares = sum(value * value for value in allocations)
    if squares <= 0:
        return 1.0
    return (total * total) / (len(allocations) * squares)
