"""Typed column buffers for fixed-width column data.

A :class:`TypedColumn` stores one fixed-width column (INTEGER, FLOAT or
BOOLEAN) in a contiguous buffer — a NumPy array when NumPy is importable, a
stdlib :mod:`array` buffer otherwise — plus a validity mask for NULLs.  The
two backends have identical observable semantics: every value that comes
*out* of a typed column (``__getitem__``, iteration, :meth:`to_list`) is a
plain Python ``int``/``float``/``bool`` or ``None``, never a NumPy scalar,
so hashing, type validation and byte accounting behave exactly as they do
for plain object lists.

Builders are deliberately *strict*: a column is only stored typed when every
non-NULL value already has the exact Python type the column declares
(``int`` for INTEGER within int64 range, ``float`` for FLOAT, ``bool`` for
BOOLEAN).  Anything else — an ``int`` in a FLOAT column, an out-of-range
integer, an opaque object — keeps the column as a plain list, so value-based
wire sizing (4 bytes for an int, 8 for a float) is never changed by storage.

The module also owns the runtime switches:

* ``REPRO_DISABLE_NUMPY=1`` in the environment forces the stdlib ``array``
  backend even when NumPy is installed (the CI fallback leg);
* :func:`set_typed_buffers` / :func:`scalar_fallback` disable typed storage
  entirely at runtime, which the equivalence tests use to compare the typed
  and fully-scalar paths on identical inputs.
"""

from __future__ import annotations

import array as _array
import os
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, Sequence

if os.environ.get("REPRO_DISABLE_NUMPY") == "1":
    np = None
else:
    try:  # pragma: no cover - exercised via the no-NumPy CI leg
        import numpy as np
    except ImportError:  # pragma: no cover
        np = None

#: True when the NumPy backend (and therefore vectorized kernels) is active.
HAVE_NUMPY = np is not None

#: int64 bounds: integers outside stay in plain lists (Python ints are
#: arbitrary precision; the buffers are not).
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: Wire width per supported dtype, matching ``DataType.fixed_size``.
_WIDTHS = {"INTEGER": 4, "FLOAT": 8, "BOOLEAN": 1}

#: stdlib ``array`` typecodes for the fallback backend.
_TYPECODES = {"INTEGER": "q", "FLOAT": "d", "BOOLEAN": "b"}

_typed_enabled = True


def typed_buffers_enabled() -> bool:
    """Whether columns are stored in typed buffers at all."""
    return _typed_enabled


def set_typed_buffers(enabled: bool) -> bool:
    """Enable/disable typed column storage; returns the previous setting."""
    global _typed_enabled
    previous = _typed_enabled
    _typed_enabled = bool(enabled)
    return previous


@contextmanager
def scalar_fallback():
    """Context manager forcing the fully-scalar (plain list) path."""
    previous = set_typed_buffers(False)
    try:
        yield
    finally:
        set_typed_buffers(previous)


def vectorization_enabled() -> bool:
    """Whether compiled (NumPy) kernels may run."""
    return HAVE_NUMPY and _typed_enabled


class TypedColumn:
    """One fixed-width column in a typed buffer, with a validity mask.

    ``data`` holds every slot (NULL slots store 0/0.0/False); ``validity``
    is ``None`` when the column has no NULLs, else a parallel mask (NumPy
    bool array, or a bytearray of 0/1 in the fallback backend) with truthy
    entries at non-NULL slots.  Columns are immutable by convention, like
    the column lists of :class:`~repro.relational.tuples.RowBatch`.
    """

    __slots__ = ("dtype_name", "width", "_data", "_validity", "_list", "_null_count")

    def __init__(self, dtype_name: str, data, validity, null_count: int) -> None:
        self.dtype_name = dtype_name
        self.width = _WIDTHS[dtype_name]
        self._data = data
        self._validity = validity
        self._list: Optional[List[Any]] = None
        self._null_count = null_count

    # -- kernel access ----------------------------------------------------------

    @property
    def data(self):
        """The raw value buffer (a NumPy array under the NumPy backend)."""
        return self._data

    @property
    def validity(self):
        """The validity mask, or ``None`` when the column has no NULLs."""
        return self._validity

    @property
    def null_count(self) -> int:
        return self._null_count

    # -- container protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, index):
        if isinstance(index, slice):
            validity = self._validity[index] if self._validity is not None else None
            data = self._data[index]
            if validity is not None:
                if np is not None and isinstance(validity, np.ndarray):
                    nulls = int(len(validity) - int(validity.sum()))
                else:
                    nulls = sum(1 for flag in validity if not flag)
                if nulls == 0:
                    validity = None
            else:
                nulls = 0
            return TypedColumn(self.dtype_name, data, validity, nulls)
        return self.to_list()[index]

    def __iter__(self) -> Iterator[Any]:
        return iter(self.to_list())

    def count(self, value: Any) -> int:
        """``list.count`` compatible; ``count(None)`` is O(1)."""
        if value is None:
            return self._null_count
        return self.to_list().count(value)

    # -- materialisation --------------------------------------------------------

    def to_list(self) -> List[Any]:
        """The column as plain Python values (cached); NULLs come back as None."""
        values = self._list
        if values is not None:
            return values
        data = self._data
        if np is not None and isinstance(data, np.ndarray):
            values = data.tolist()
        elif self.dtype_name == "BOOLEAN":
            values = [bool(v) for v in data]
        else:
            values = list(data)
        validity = self._validity
        if validity is not None:
            if np is not None and isinstance(validity, np.ndarray):
                for index in np.flatnonzero(~validity).tolist():
                    values[index] = None
            else:
                for index, flag in enumerate(validity):
                    if not flag:
                        values[index] = None
        self._list = values
        return values

    # -- column-wise operations -------------------------------------------------

    def take(self, indexes: Sequence[int]) -> "TypedColumn":
        """The column restricted/reordered to the rows at ``indexes``."""
        if np is not None and isinstance(self._data, np.ndarray):
            order = np.asarray(indexes, dtype=np.intp)
            data = self._data.take(order)
            validity = self._validity
            if validity is not None:
                validity = validity.take(order)
                nulls = int(len(validity) - int(validity.sum()))
                if nulls == 0:
                    validity = None
            else:
                nulls = 0
            return TypedColumn(self.dtype_name, data, validity, nulls)
        data = _array.array(_TYPECODES[self.dtype_name], (self._data[i] for i in indexes))
        validity = self._validity
        if validity is not None:
            validity = bytearray(validity[i] for i in indexes)
            nulls = sum(1 for flag in validity if not flag)
            if nulls == 0:
                validity = None
        else:
            nulls = 0
        return TypedColumn(self.dtype_name, data, validity, nulls)

    def take_mask(self, mask) -> "TypedColumn":
        """The column restricted to rows where ``mask`` (a bool array) is True."""
        if np is not None and isinstance(self._data, np.ndarray):
            data = self._data[mask]
            validity = self._validity
            if validity is not None:
                validity = validity[mask]
                nulls = int(len(validity) - int(validity.sum()))
                if nulls == 0:
                    validity = None
            else:
                nulls = 0
            return TypedColumn(self.dtype_name, data, validity, nulls)
        keep = [i for i, flag in enumerate(mask) if flag]
        return self.take(keep)

    @classmethod
    def concat(cls, columns: Sequence["TypedColumn"]) -> "TypedColumn":
        """Concatenate same-dtype columns into one."""
        first = columns[0]
        if len(columns) == 1:
            return first
        nulls = sum(column._null_count for column in columns)
        if np is not None and isinstance(first._data, np.ndarray):
            data = np.concatenate([column._data for column in columns])
            if nulls:
                validity = np.concatenate(
                    [
                        column._validity
                        if column._validity is not None
                        else np.ones(len(column), dtype=bool)
                        for column in columns
                    ]
                )
            else:
                validity = None
            return cls(first.dtype_name, data, validity, nulls)
        data = _array.array(_TYPECODES[first.dtype_name])
        for column in columns:
            data.extend(column._data)
        if nulls:
            validity = bytearray()
            for column in columns:
                if column._validity is not None:
                    validity.extend(column._validity)
                else:
                    validity.extend(b"\x01" * len(column))
        else:
            validity = None
        return cls(first.dtype_name, data, validity, nulls)

    def __repr__(self) -> str:
        return (
            f"TypedColumn({self.dtype_name}, {len(self._data)} values, "
            f"{self._null_count} nulls)"
        )


def _is_typed_value(dtype_name: str, value: Any) -> bool:
    if dtype_name == "INTEGER":
        return type(value) is int and _INT64_MIN <= value <= _INT64_MAX
    if dtype_name == "FLOAT":
        return type(value) is float
    return type(value) is bool


def build_typed_column(values: Sequence[Any], dtype: Any) -> Optional[TypedColumn]:
    """Build a :class:`TypedColumn` from ``values``, or None when not eligible.

    ``dtype`` is a :class:`~repro.relational.types.DataType` (or its name).
    Returns None — leaving the caller with the plain list — when typed
    buffers are disabled, the dtype is variable-width, or any non-NULL value
    is not already the exact Python type the column stores.
    """
    if not _typed_enabled:
        return None
    dtype_name = getattr(dtype, "name", dtype)
    if dtype_name not in _WIDTHS:
        return None
    null_positions: List[int] = []
    for index, value in enumerate(values):
        if value is None:
            null_positions.append(index)
        elif not _is_typed_value(dtype_name, value):
            return None
    count = len(values)
    if null_positions:
        fill: Any = False if dtype_name == "BOOLEAN" else 0
        filled = [fill if value is None else value for value in values]
    else:
        filled = values if isinstance(values, list) else list(values)
    if np is not None:
        np_dtype = {"INTEGER": np.int64, "FLOAT": np.float64, "BOOLEAN": np.bool_}[
            dtype_name
        ]
        data = np.array(filled, dtype=np_dtype)
        if null_positions:
            validity = np.ones(count, dtype=bool)
            validity[null_positions] = False
        else:
            validity = None
        return TypedColumn(dtype_name, data, validity, len(null_positions))
    data = _array.array(_TYPECODES[dtype_name], filled)
    if null_positions:
        validity = bytearray(b"\x01" * count)
        for index in null_positions:
            validity[index] = 0
    else:
        validity = None
    return TypedColumn(dtype_name, data, validity, len(null_positions))
