"""Column data types and sized opaque values.

The paper's experiments are dominated by the *sizes* of the values shipped
over the network (argument columns, non-argument columns, UDF results), so
the type system here is built around byte-accurate size accounting:

* every :class:`DataType` can compute the serialized size of one of its
  values via :meth:`DataType.serialized_size`;
* :class:`DataObject` models the paper's ``DataObject`` column values —
  opaque blobs of a declared size (the experiments use 100/500/1000/5000-byte
  objects);
* :class:`TimeSeries` models the ``Quotes`` arguments of the motivating
  ``ClientAnalysis`` UDF: a sequence of floats with a well-defined size.

Values of every type are immutable and hashable so they can participate in
duplicate elimination, hashing joins, and sorting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from repro.errors import TypeMismatchError

# Fixed serialized widths, in bytes, for primitive types.  These mirror the
# widths a simple wire format would use and only matter for network-byte
# accounting, not for Python-level storage.
_INTEGER_WIDTH = 4
_FLOAT_WIDTH = 8
_BOOLEAN_WIDTH = 1
_STRING_HEADER = 4  # length prefix
_BLOB_HEADER = 4  # length prefix


class DataObject:
    """An opaque, sized value.

    ``DataObject(size, seed)`` stands for a blob of ``size`` bytes whose
    content is abstracted into an integer ``seed``.  Two data objects compare
    equal iff both size and seed match, which is exactly the behaviour needed
    for argument-duplicate elimination in the semi-join sender.
    """

    __slots__ = ("size", "seed")

    def __init__(self, size: int, seed: int = 0) -> None:
        if size < 0:
            raise ValueError("DataObject size must be non-negative")
        self.size = int(size)
        self.seed = int(seed)

    def serialized_size(self) -> int:
        """Number of bytes this object occupies on the wire."""
        return _BLOB_HEADER + self.size

    def derive(self, new_size: int) -> "DataObject":
        """Return a new object of ``new_size`` bytes derived from this one.

        Used by synthetic UDFs that must return a result "computed from" the
        argument: the seed is propagated so equal arguments yield equal
        results (a property several tests rely on).
        """
        return DataObject(new_size, self.seed)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataObject):
            return NotImplemented
        return self.size == other.size and self.seed == other.seed

    def __lt__(self, other: "DataObject") -> bool:
        if not isinstance(other, DataObject):
            return NotImplemented
        return (self.seed, self.size) < (other.seed, other.size)

    def __hash__(self) -> int:
        return hash((DataObject, self.size, self.seed))

    def __repr__(self) -> str:
        return f"DataObject(size={self.size}, seed={self.seed})"


class TimeSeries:
    """An immutable sequence of float observations (e.g. price quotes)."""

    __slots__ = ("values",)

    def __init__(self, values) -> None:
        self.values: Tuple[float, ...] = tuple(float(v) for v in values)

    def serialized_size(self) -> int:
        return _BLOB_HEADER + _FLOAT_WIDTH * len(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, index):
        return self.values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return self.values == other.values

    def __lt__(self, other: "TimeSeries") -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return self.values < other.values

    def __hash__(self) -> int:
        return hash((TimeSeries, self.values))

    def __repr__(self) -> str:
        preview = ", ".join(f"{v:g}" for v in self.values[:4])
        suffix = ", ..." if len(self.values) > 4 else ""
        return f"TimeSeries([{preview}{suffix}], n={len(self.values)})"


@dataclass(frozen=True)
class DataType:
    """A column data type.

    ``validator`` accepts a Python value and returns True when the value is a
    legal instance of the type.  ``sizer`` maps a value to its wire size in
    bytes.  ``NULL`` (``None``) is legal for every type and costs one byte.

    ``fixed_size`` is the wire width of every non-NULL value for fixed-width
    types (integers, floats, booleans) and ``None`` for variable-width types.
    Batch-level size accounting uses it to price whole columns without
    calling ``sizer`` once per value.
    """

    name: str
    validator: Callable[[Any], bool]
    sizer: Callable[[Any], int]
    fixed_size: Optional[int] = None

    def validate(self, value: Any) -> None:
        """Raise :class:`TypeMismatchError` unless ``value`` fits this type."""
        if value is None:
            return
        if not self.validator(value):
            raise TypeMismatchError(
                f"value {value!r} ({type(value).__name__}) is not a valid {self.name}"
            )

    def is_valid(self, value: Any) -> bool:
        return value is None or self.validator(value)

    def serialized_size(self, value: Any) -> int:
        """Wire size of ``value`` in bytes (1 byte for NULL)."""
        if value is None:
            return 1
        return self.sizer(value)

    def __repr__(self) -> str:
        return f"DataType({self.name})"

    def __str__(self) -> str:
        return self.name


def _is_integer(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_float(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


INTEGER = DataType("INTEGER", _is_integer, lambda value: _INTEGER_WIDTH, fixed_size=_INTEGER_WIDTH)
FLOAT = DataType("FLOAT", _is_float, lambda value: _FLOAT_WIDTH, fixed_size=_FLOAT_WIDTH)
BOOLEAN = DataType(
    "BOOLEAN",
    lambda value: isinstance(value, bool),
    lambda value: _BOOLEAN_WIDTH,
    fixed_size=_BOOLEAN_WIDTH,
)
STRING = DataType(
    "STRING",
    lambda value: isinstance(value, str),
    lambda value: _STRING_HEADER + len(value.encode("utf-8")),
)
DATA_OBJECT = DataType(
    "DATA_OBJECT",
    lambda value: isinstance(value, DataObject),
    lambda value: value.serialized_size(),
)
TIME_SERIES = DataType(
    "TIME_SERIES",
    lambda value: isinstance(value, TimeSeries),
    lambda value: value.serialized_size(),
)

#: All built-in types, keyed by name, for the SQL binder and the catalog.
BUILTIN_TYPES = {
    dtype.name: dtype
    for dtype in (INTEGER, FLOAT, BOOLEAN, STRING, DATA_OBJECT, TIME_SERIES)
}


def type_by_name(name: str) -> DataType:
    """Look up a built-in type by its (case-insensitive) name."""
    try:
        return BUILTIN_TYPES[name.upper()]
    except KeyError as exc:
        raise TypeMismatchError(f"unknown data type {name!r}") from exc


def value_size(value: Any) -> int:
    """Best-effort wire size of an arbitrary value, used for UDF results."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return _BOOLEAN_WIDTH
    if isinstance(value, int):
        return _INTEGER_WIDTH
    if isinstance(value, float):
        return _FLOAT_WIDTH
    if isinstance(value, str):
        return _STRING_HEADER + len(value.encode("utf-8"))
    if isinstance(value, (DataObject, TimeSeries)):
        return value.serialized_size()
    if isinstance(value, (bytes, bytearray)):
        return _BLOB_HEADER + len(value)
    if isinstance(value, (tuple, list)):
        return _BLOB_HEADER + sum(value_size(item) for item in value)
    # Fallback: the repr length is a crude but deterministic proxy.
    return _BLOB_HEADER + len(repr(value))
