"""The system catalog: tables, their statistics, and aliases."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import CatalogError
from repro.relational.statistics import TableStatistics
from repro.relational.table import Table


class Catalog:
    """A registry of named tables.

    The catalog is case-insensitive on table names, mirroring typical SQL
    behaviour, but preserves the original spelling for display.
    """

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}

    def register(self, table: Table, replace: bool = False) -> Table:
        """Add ``table`` to the catalog.

        Raises :class:`CatalogError` when a table of the same name exists and
        ``replace`` is False.
        """
        key = table.name.lower()
        if key in self._tables and not replace:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = table
        return table

    def drop(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]

    def table(self, name: str) -> Table:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        return self._tables[key]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def statistics(self, name: str) -> TableStatistics:
        return self.table(name).statistics

    def table_names(self) -> List[str]:
        return sorted(table.name for table in self._tables.values())

    def __contains__(self, name: str) -> bool:
        return self.has_table(name)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:
        return f"Catalog(tables={self.table_names()})"
