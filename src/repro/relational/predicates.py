"""Predicate analysis: selectivity estimation, pushability, and join detection.

This module provides the static analyses the optimizer needs:

* :func:`estimate_selectivity` — textbook selectivity estimation from column
  statistics (1/V(A) for equality, 1/3 for ranges, independence for AND/OR);
* :func:`is_join_predicate` — detects equi-join predicates between two
  relations;
* :class:`PredicateInfo` — per-conjunct metadata: referenced columns, UDF
  calls, whether it is *pushable* to the client given a set of columns that
  will be present there (Section 2 of the paper: "simple predicates that rely
  on the values in the result columns, but can be executed on the client").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.relational.expressions import (
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    Literal,
    conjuncts,
)
from repro.relational.statistics import TableStatistics

#: Default selectivities used when statistics cannot answer.
DEFAULT_EQUALITY_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_SELECTIVITY = 0.5


def _bare_name(name: str) -> str:
    return name.partition(".")[2] if "." in name else name


def estimate_selectivity(
    expression: Optional[Expression],
    statistics: Optional[TableStatistics] = None,
    udf_selectivities: Optional[Dict[str, float]] = None,
) -> float:
    """Estimate the fraction of rows satisfying ``expression``.

    ``udf_selectivities`` maps UDF names to externally supplied selectivities
    (the paper's experiments vary the selectivity of the pushable predicate
    ``UDF1`` explicitly).
    """
    if expression is None:
        return 1.0
    udf_selectivities = udf_selectivities or {}

    if isinstance(expression, BooleanOp):
        child = [
            estimate_selectivity(operand, statistics, udf_selectivities)
            for operand in expression.operands
        ]
        if expression.operator == "AND":
            product = 1.0
            for value in child:
                product *= value
            return product
        if expression.operator == "OR":
            complement = 1.0
            for value in child:
                complement *= 1.0 - value
            return 1.0 - complement
        return max(0.0, 1.0 - child[0])

    if isinstance(expression, Comparison):
        return _comparison_selectivity(expression, statistics, udf_selectivities)

    if isinstance(expression, FunctionCall):
        # A bare boolean UDF used as a predicate.
        return udf_selectivities.get(
            expression.name, udf_selectivities.get(expression.name.lower(), DEFAULT_SELECTIVITY)
        )

    if isinstance(expression, Literal):
        return 1.0 if expression.value else 0.0

    return DEFAULT_SELECTIVITY


def _comparison_selectivity(
    expression: Comparison,
    statistics: Optional[TableStatistics],
    udf_selectivities: Dict[str, float],
) -> float:
    calls = expression.function_calls()
    if calls:
        # Comparisons on a UDF result, e.g. ClientAnalysis(x) > 500: defer to
        # a per-UDF selectivity if given.
        for call in calls:
            if call.name in udf_selectivities:
                return udf_selectivities[call.name]
            if call.name.lower() in udf_selectivities:
                return udf_selectivities[call.name.lower()]
        return DEFAULT_SELECTIVITY

    if expression.operator in ("=",):
        column = _single_column_vs_literal(expression)
        if column and statistics is not None:
            distinct = statistics.column(_bare_name(column)).distinct_count
            if distinct > 0:
                return 1.0 / distinct
        return DEFAULT_EQUALITY_SELECTIVITY
    if expression.operator in ("<>", "!="):
        return 1.0 - _comparison_selectivity(
            Comparison("=", expression.left, expression.right), statistics, udf_selectivities
        )
    if statistics is not None:
        estimate = _histogram_range_selectivity(expression, statistics)
        if estimate is not None:
            return estimate
    return DEFAULT_RANGE_SELECTIVITY


def _histogram_range_selectivity(
    expression: Comparison, statistics: TableStatistics
) -> Optional[float]:
    """Histogram-based selectivity of a column-vs-literal range comparison.

    Returns ``None`` when the comparison is not a single column against a
    numeric literal, or when the column's statistics carry no histogram —
    the flat :data:`DEFAULT_RANGE_SELECTIVITY` then applies, which keeps
    estimates without statistics exactly as before.
    """
    left, right = expression.left, expression.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        column, literal, operator = left.name, right.value, expression.operator
    elif isinstance(right, ColumnRef) and isinstance(left, Literal):
        # Flip ``literal OP column`` into ``column OP' literal``.
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        column, literal = right.name, left.value
        operator = flipped.get(expression.operator, expression.operator)
    else:
        return None
    if isinstance(literal, bool) or not isinstance(literal, (int, float)):
        return None
    histogram = statistics.column(_bare_name(column)).histogram
    if histogram is None or histogram.total <= 0:
        return None
    below = histogram.fraction_below(float(literal))
    if operator in ("<", "<="):
        estimate = below
    elif operator in (">", ">="):
        estimate = 1.0 - below
    else:
        return None
    return min(1.0, max(0.0, estimate))


def _single_column_vs_literal(expression: Comparison) -> Optional[str]:
    """Return the column name when the comparison is column-vs-literal."""
    left, right = expression.left, expression.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        return left.name
    if isinstance(right, ColumnRef) and isinstance(left, Literal):
        return right.name
    return None


@dataclass(frozen=True)
class IndexCondition:
    """A column-vs-literal comparison an index could serve.

    ``column`` is the name as written (possibly table-qualified),
    ``operator`` one of ``=``, ``<``, ``<=``, ``>``, ``>=`` with the column
    on the left (literal-op-column comparisons are flipped).
    """

    column: str
    operator: str
    value: object

    @property
    def is_equality(self) -> bool:
        return self.operator == "="


_INDEXABLE_OPERATORS = {"=", "<", "<=", ">", ">="}
_FLIPPED_OPERATORS = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


def index_condition(expression: Expression) -> Optional[IndexCondition]:
    """The :class:`IndexCondition` of ``expression``, or None.

    Only UDF-free column-vs-literal comparisons with a non-NULL literal
    qualify (``col = NULL`` never matches under three-valued logic, and an
    index never stores NULL keys anyway).
    """
    if not isinstance(expression, Comparison):
        return None
    if expression.operator not in _INDEXABLE_OPERATORS:
        return None
    if expression.function_calls():
        return None
    left, right = expression.left, expression.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        column, operator, value = left.name, expression.operator, right.value
    elif isinstance(right, ColumnRef) and isinstance(left, Literal):
        column, operator, value = (
            right.name,
            _FLIPPED_OPERATORS[expression.operator],
            left.value,
        )
    else:
        return None
    if value is None:
        return None
    return IndexCondition(column=column, operator=operator, value=value)


def equi_join_columns(expression: Expression) -> Optional[Tuple[str, str]]:
    """The ``(left, right)`` column names of a two-column equality, or None."""
    if not isinstance(expression, Comparison) or expression.operator != "=":
        return None
    if expression.function_calls():
        return None
    left, right = expression.left, expression.right
    if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
        return left.name, right.name
    return None


def is_join_predicate(
    expression: Expression, left_columns: Set[str], right_columns: Set[str]
) -> bool:
    """True when ``expression`` is an equi-join between the two column sets.

    Column sets are given as qualified names; bare-name fallbacks are applied
    so ``S.Name = E.CompanyName`` matches regardless of qualification style.
    """
    if not isinstance(expression, Comparison) or expression.operator != "=":
        return False
    if expression.function_calls():
        return False
    left_refs = expression.left.columns()
    right_refs = expression.right.columns()
    if not left_refs or not right_refs:
        return False

    def side_of(names: FrozenSet[str]) -> Optional[str]:
        if all(_covered(name, left_columns) for name in names):
            return "left"
        if all(_covered(name, right_columns) for name in names):
            return "right"
        return None

    sides = {side_of(left_refs), side_of(right_refs)}
    return sides == {"left", "right"}


def _covered(name: str, available: Set[str]) -> bool:
    """True when column ``name`` is present in ``available`` (qualified or not)."""
    if name in available:
        return True
    bare = _bare_name(name)
    if bare in available:
        return True
    return any(_bare_name(candidate) == bare for candidate in available)


def columns_covered(required: FrozenSet[str], available: Set[str]) -> bool:
    """True when every column in ``required`` is present in ``available``."""
    return all(_covered(name, available) for name in required)


@dataclass
class PredicateInfo:
    """Metadata for a single conjunct of a WHERE clause."""

    expression: Expression
    columns: FrozenSet[str] = field(default_factory=frozenset)
    udf_names: Tuple[str, ...] = ()
    selectivity: float = DEFAULT_SELECTIVITY

    @classmethod
    def analyze(
        cls,
        expression: Expression,
        statistics: Optional[TableStatistics] = None,
        udf_selectivities: Optional[Dict[str, float]] = None,
    ) -> "PredicateInfo":
        return cls(
            expression=expression,
            columns=expression.columns(),
            udf_names=tuple(call.name for call in expression.function_calls()),
            selectivity=estimate_selectivity(expression, statistics, udf_selectivities),
        )

    @property
    def references_udf(self) -> bool:
        return bool(self.udf_names)

    def references_only(self, udf_names: Set[str]) -> bool:
        """True when every UDF mentioned is in ``udf_names``."""
        return all(name in udf_names for name in self.udf_names)

    def is_pushable(
        self, client_columns: Set[str], client_udfs: Set[str]
    ) -> bool:
        """Can this predicate be evaluated at the client?

        It can when every referenced column is available at the client (either
        shipped there or produced there as a UDF result) and every function it
        calls is a client-site UDF (or no function at all).
        """
        if not columns_covered(self.columns, client_columns):
            return False
        return all(name in client_udfs for name in self.udf_names)

    def __str__(self) -> str:
        return str(self.expression)


def analyze_conjuncts(
    expression: Optional[Expression],
    statistics: Optional[TableStatistics] = None,
    udf_selectivities: Optional[Dict[str, float]] = None,
) -> List[PredicateInfo]:
    """Split ``expression`` into conjuncts and analyze each one."""
    return [
        PredicateInfo.analyze(conjunct, statistics, udf_selectivities)
        for conjunct in conjuncts(expression)
    ]
