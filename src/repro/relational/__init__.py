"""In-memory relational engine substrate.

This subpackage provides the relational machinery that the paper's
client-site UDF algorithms are layered on: typed schemas, rows, tables, a
catalog with statistics, scalar expressions, and iterator-model physical
operators.  It deliberately stays small and dependency-free; it is the
stand-in for the Cornell PREDATOR server engine used in the paper.
"""

from repro.relational.types import (
    DataType,
    BOOLEAN,
    INTEGER,
    FLOAT,
    STRING,
    DATA_OBJECT,
    TIME_SERIES,
    DataObject,
    TimeSeries,
)
from repro.relational.schema import Column, Schema
from repro.relational.tuples import Row, row_size
from repro.relational.table import Table
from repro.relational.catalog import Catalog
from repro.relational.statistics import ColumnStatistics, TableStatistics

__all__ = [
    "DataType",
    "BOOLEAN",
    "INTEGER",
    "FLOAT",
    "STRING",
    "DATA_OBJECT",
    "TIME_SERIES",
    "DataObject",
    "TimeSeries",
    "Column",
    "Schema",
    "Row",
    "row_size",
    "Table",
    "Catalog",
    "ColumnStatistics",
    "TableStatistics",
]
