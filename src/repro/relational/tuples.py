"""Row and row-batch representations and byte-accurate row sizing.

Rows are plain immutable tuples wrapped in a tiny :class:`Row` subclass so
they stay cheap to create and hashable, while still reading clearly in
operator code.  All positional access goes through schema lookups performed
once per operator (not once per row).

:class:`RowBatch` is the unit of the vectorized (batch-at-a-time) execution
protocol: an ordered slice of rows that operators hand to each other and that
the execution strategies ship over the network in a single message.  Batches
carry no schema of their own — like rows, they are aligned with the producing
operator's schema.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.relational.schema import Schema
from repro.relational.types import value_size

#: Default number of rows per batch in batch-at-a-time operator execution.
#: Large enough to amortise per-batch overhead, small enough that partially
#: consumed pipelines (LIMIT) do not overshoot badly.
DEFAULT_BATCH_SIZE = 1024


class Row(tuple):
    """An immutable row of values aligned with some :class:`Schema`."""

    __slots__ = ()

    def __new__(cls, values: Iterable[Any]) -> "Row":
        return super().__new__(cls, tuple(values))

    def project(self, positions: Sequence[int]) -> "Row":
        """Return a row containing only the values at ``positions``."""
        return Row(self[position] for position in positions)

    def concat(self, other: Sequence[Any]) -> "Row":
        """Return this row followed by ``other`` (used by joins)."""
        return Row(tuple(self) + tuple(other))

    def append(self, value: Any) -> "Row":
        """Return this row with ``value`` added at the end (UDF result)."""
        return Row(tuple(self) + (value,))

    def replace(self, position: int, value: Any) -> "Row":
        values = list(self)
        values[position] = value
        return Row(values)

    def as_dict(self, schema: Schema) -> Dict[str, Any]:
        """Map qualified column names to values (for display and tests)."""
        return dict(zip(schema.qualified_names(), self))


class RowBatch:
    """An ordered run of rows processed as one unit by batch operators.

    Storage is *columnar*: the batch holds one Python list per column, so
    projection selects column references (O(columns), no per-row objects),
    predicate evaluation walks plain value tuples, and wire sizing prices
    fixed-width columns arithmetically.  Rows are materialised lazily — only
    when a consumer actually asks for :class:`Row` objects (the client/UDF
    shipping boundary, joins that build concatenated rows) — and cached, so
    a batch constructed from rows and only ever read as rows never transposes.
    Batches are immutable by convention: every operation builds a new batch,
    and column lists may be shared between batches, so callers must never
    mutate ``rows`` or ``columns``.
    """

    __slots__ = ("_rows", "_columns", "_length")

    def __init__(self, rows: Iterable[Row]) -> None:
        materialised = rows if isinstance(rows, list) else list(rows)
        self._rows: Optional[List[Row]] = materialised
        self._columns: Optional[List[List[Any]]] = None
        self._length = len(materialised)

    @classmethod
    def from_columns(
        cls, columns: Sequence[List[Any]], length: Optional[int] = None
    ) -> "RowBatch":
        """A batch over pre-built column lists (not copied — do not mutate)."""
        batch = cls.__new__(cls)
        column_list = [
            column if isinstance(column, list) else list(column) for column in columns
        ]
        batch._rows = None
        batch._columns = column_list
        batch._length = length if length is not None else (
            len(column_list[0]) if column_list else 0
        )
        return batch

    # -- representations ---------------------------------------------------------

    @property
    def rows(self) -> List[Row]:
        """The batch as :class:`Row` objects, materialised lazily and cached."""
        rows = self._rows
        if rows is None:
            if self._columns:
                rows = [Row(values) for values in zip(*self._columns)]
            else:
                rows = [Row(()) for _ in range(self._length)]
            self._rows = rows
        return rows

    @property
    def columns(self) -> List[List[Any]]:
        """The batch as column lists, transposed lazily and cached."""
        columns = self._columns
        if columns is None:
            rows = self._rows
            columns = [list(values) for values in zip(*rows)] if rows else []
            self._columns = columns
        return columns

    def column(self, position: int) -> List[Any]:
        """The values of one column, in row order."""
        return self.columns[position]

    def _value_tuples(self) -> Iterable[Tuple[Any, ...]]:
        """Row-shaped plain tuples, without allocating :class:`Row` objects."""
        if self._rows is not None:
            return self._rows
        if self._columns:
            return zip(*self._columns)
        return (() for _ in range(self._length))

    # -- container protocol ------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return self._length > 0

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.rows[index]
        if self._rows is None and self._columns is not None:
            return Row(column[index] for column in self._columns)
        return self.rows[index]

    # -- column-wise operations --------------------------------------------------

    def take(self, indexes: Sequence[int]) -> "RowBatch":
        """The batch restricted to the rows at ``indexes``, column-wise.

        ``indexes`` may select, drop, duplicate, or reorder rows; selecting
        every row in order returns the batch itself.
        """
        if len(indexes) == self._length and all(
            index == position for position, index in enumerate(indexes)
        ):
            return self
        columns = self.columns
        return RowBatch.from_columns(
            [[column[index] for index in indexes] for column in columns], len(indexes)
        )

    def key_tuples(self, positions: Optional[Sequence[int]] = None) -> List[Tuple[Any, ...]]:
        """Per-row value tuples over ``positions`` (all columns when ``None``).

        The shared key-extraction path for duplicate elimination and hash
        joins: values come straight off the column lists, no :class:`Row`
        objects are allocated, and a zero-width key yields one empty tuple
        per row.
        """
        columns = self.columns
        if positions is not None:
            columns = [columns[position] for position in positions]
        if not columns:
            return [()] * self._length
        return list(zip(*columns))

    def project(self, positions: Sequence[int]) -> "RowBatch":
        """A new batch containing only the columns at ``positions``.

        Column-wise: the new batch shares the selected column lists, so a
        mid-chain projection costs O(columns), not O(rows x columns).
        """
        if not self._length:
            return RowBatch([])
        columns = self.columns
        return RowBatch.from_columns(
            [columns[position] for position in positions], self._length
        )

    def filter(self, keep: Callable[[Sequence[Any]], Any]) -> "RowBatch":
        """A new batch containing only the rows for which ``keep`` is truthy.

        ``keep`` receives each row as a positional sequence (a plain value
        tuple on the columnar path — no :class:`Row` objects are allocated).
        """
        if not self._length:
            return RowBatch([])
        if self._rows is not None:
            return RowBatch([row for row in self._rows if keep(row)])
        kept = [
            index for index, values in enumerate(self._value_tuples()) if keep(values)
        ]
        return self.take(kept)

    def slice(self, start: int, stop: int) -> "RowBatch":
        """The batch restricted to rows ``start:stop`` (column-wise)."""
        if self._rows is not None:
            return RowBatch(self._rows[start:stop])
        length = max(0, min(stop, self._length) - max(0, start))
        return RowBatch.from_columns(
            [column[start:stop] for column in self.columns], length
        )

    def size_bytes(self, schema: Schema) -> int:
        """Total wire size of the batch's rows under ``schema``.

        Fixed-width columns are priced from the schema's cached size plan —
        ``width x non-NULL count`` plus one byte per NULL — in one arithmetic
        step per column; only variable-width columns walk their values.
        """
        if not self._length:
            return 0
        fixed, variable = schema.size_plan()
        columns = self.columns
        total = 0
        for position, width in fixed:
            column = columns[position]
            nulls = column.count(None)
            total += width * (len(column) - nulls) + nulls
        for position in variable:
            sizer = schema.columns[position].dtype.serialized_size
            total += sum(sizer(value) for value in columns[position])
        return total

    def __repr__(self) -> str:
        return f"RowBatch({self._length} rows)"


def batches_of(rows: Iterable[Row], batch_size: int) -> Iterator[RowBatch]:
    """Chunk a row stream into :class:`RowBatch` es of at most ``batch_size``.

    The chunker pulls lazily: it never draws more than one batch ahead of the
    consumer, so partially consumed pipelines stop early.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    pending: List[Row] = []
    for row in rows:
        pending.append(row)
        if len(pending) >= batch_size:
            yield RowBatch(pending)
            pending = []
    if pending:
        yield RowBatch(pending)


def row_size(row: Sequence[Any], schema: Schema) -> int:
    """Wire size of ``row`` in bytes under ``schema``'s column types."""
    return sum(
        column.dtype.serialized_size(value) for column, value in zip(schema.columns, row)
    )


def rows_size(rows: Sequence[Sequence[Any]], schema: Schema) -> int:
    """Wire size of many rows under ``schema``, using the cached size plan.

    Delegates to :meth:`RowBatch.size_bytes` so the fixed/variable-width
    accounting exists in exactly one place.
    """
    if not rows:
        return 0
    return RowBatch(list(rows)).size_bytes(schema)


def values_size(values: Sequence[Any]) -> int:
    """Wire size of a bag of values whose types are not statically known."""
    return sum(value_size(value) for value in values)


def project_positions(schema: Schema, names: Sequence[str]) -> Tuple[int, ...]:
    """Resolve ``names`` to positions once, for use in per-row projection."""
    return tuple(schema.index_of(name) for name in names)
