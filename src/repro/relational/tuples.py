"""Row and row-batch representations and byte-accurate row sizing.

Rows are plain immutable tuples wrapped in a tiny :class:`Row` subclass so
they stay cheap to create and hashable, while still reading clearly in
operator code.  All positional access goes through schema lookups performed
once per operator (not once per row).

:class:`RowBatch` is the unit of the vectorized (batch-at-a-time) execution
protocol: an ordered slice of rows that operators hand to each other and that
the execution strategies ship over the network in a single message.  Batches
carry no schema of their own — like rows, they are aligned with the producing
operator's schema.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.relational.schema import Schema
from repro.relational.types import value_size

#: Default number of rows per batch in batch-at-a-time operator execution.
#: Large enough to amortise per-batch overhead, small enough that partially
#: consumed pipelines (LIMIT) do not overshoot badly.
DEFAULT_BATCH_SIZE = 1024


class Row(tuple):
    """An immutable row of values aligned with some :class:`Schema`."""

    __slots__ = ()

    def __new__(cls, values: Iterable[Any]) -> "Row":
        return super().__new__(cls, tuple(values))

    def project(self, positions: Sequence[int]) -> "Row":
        """Return a row containing only the values at ``positions``."""
        return Row(self[position] for position in positions)

    def concat(self, other: Sequence[Any]) -> "Row":
        """Return this row followed by ``other`` (used by joins)."""
        return Row(tuple(self) + tuple(other))

    def append(self, value: Any) -> "Row":
        """Return this row with ``value`` added at the end (UDF result)."""
        return Row(tuple(self) + (value,))

    def replace(self, position: int, value: Any) -> "Row":
        values = list(self)
        values[position] = value
        return Row(values)

    def as_dict(self, schema: Schema) -> Dict[str, Any]:
        """Map qualified column names to values (for display and tests)."""
        return dict(zip(schema.qualified_names(), self))


class RowBatch:
    """An ordered run of rows processed as one unit by batch operators."""

    __slots__ = ("rows",)

    def __init__(self, rows: Iterable[Row]) -> None:
        self.rows: List[Row] = rows if isinstance(rows, list) else list(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __getitem__(self, index: int) -> Row:
        return self.rows[index]

    def project(self, positions: Sequence[int]) -> "RowBatch":
        """A new batch with every row projected onto ``positions``."""
        return RowBatch([row.project(positions) for row in self.rows])

    def filter(self, keep: Callable[[Row], Any]) -> "RowBatch":
        """A new batch containing only the rows for which ``keep`` is truthy."""
        return RowBatch([row for row in self.rows if keep(row)])

    def size_bytes(self, schema: Schema) -> int:
        """Total wire size of the batch's rows under ``schema``."""
        return sum(row_size(row, schema) for row in self.rows)

    def __repr__(self) -> str:
        return f"RowBatch({len(self.rows)} rows)"


def batches_of(rows: Iterable[Row], batch_size: int) -> Iterator[RowBatch]:
    """Chunk a row stream into :class:`RowBatch` es of at most ``batch_size``.

    The chunker pulls lazily: it never draws more than one batch ahead of the
    consumer, so partially consumed pipelines stop early.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    pending: List[Row] = []
    for row in rows:
        pending.append(row)
        if len(pending) >= batch_size:
            yield RowBatch(pending)
            pending = []
    if pending:
        yield RowBatch(pending)


def row_size(row: Sequence[Any], schema: Schema) -> int:
    """Wire size of ``row`` in bytes under ``schema``'s column types."""
    return sum(
        column.dtype.serialized_size(value) for column, value in zip(schema.columns, row)
    )


def values_size(values: Sequence[Any]) -> int:
    """Wire size of a bag of values whose types are not statically known."""
    return sum(value_size(value) for value in values)


def project_positions(schema: Schema, names: Sequence[str]) -> Tuple[int, ...]:
    """Resolve ``names`` to positions once, for use in per-row projection."""
    return tuple(schema.index_of(name) for name in names)
