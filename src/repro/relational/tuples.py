"""Row representation and byte-accurate row sizing.

Rows are plain immutable tuples wrapped in a tiny :class:`Row` subclass so
they stay cheap to create and hashable, while still reading clearly in
operator code.  All positional access goes through schema lookups performed
once per operator (not once per row).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Sequence, Tuple

from repro.relational.schema import Schema
from repro.relational.types import value_size


class Row(tuple):
    """An immutable row of values aligned with some :class:`Schema`."""

    __slots__ = ()

    def __new__(cls, values: Iterable[Any]) -> "Row":
        return super().__new__(cls, tuple(values))

    def project(self, positions: Sequence[int]) -> "Row":
        """Return a row containing only the values at ``positions``."""
        return Row(self[position] for position in positions)

    def concat(self, other: Sequence[Any]) -> "Row":
        """Return this row followed by ``other`` (used by joins)."""
        return Row(tuple(self) + tuple(other))

    def append(self, value: Any) -> "Row":
        """Return this row with ``value`` added at the end (UDF result)."""
        return Row(tuple(self) + (value,))

    def replace(self, position: int, value: Any) -> "Row":
        values = list(self)
        values[position] = value
        return Row(values)

    def as_dict(self, schema: Schema) -> Dict[str, Any]:
        """Map qualified column names to values (for display and tests)."""
        return dict(zip(schema.qualified_names(), self))


def row_size(row: Sequence[Any], schema: Schema) -> int:
    """Wire size of ``row`` in bytes under ``schema``'s column types."""
    return sum(
        column.dtype.serialized_size(value) for column, value in zip(schema.columns, row)
    )


def values_size(values: Sequence[Any]) -> int:
    """Wire size of a bag of values whose types are not statically known."""
    return sum(value_size(value) for value in values)


def project_positions(schema: Schema, names: Sequence[str]) -> Tuple[int, ...]:
    """Resolve ``names`` to positions once, for use in per-row projection."""
    return tuple(schema.index_of(name) for name in names)
