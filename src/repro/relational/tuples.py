"""Row and row-batch representations and byte-accurate row sizing.

Rows are plain immutable tuples wrapped in a tiny :class:`Row` subclass so
they stay cheap to create and hashable, while still reading clearly in
operator code.  All positional access goes through schema lookups performed
once per operator (not once per row).

:class:`RowBatch` is the unit of the vectorized (batch-at-a-time) execution
protocol: an ordered slice of rows that operators hand to each other and that
the execution strategies ship over the network in a single message.  Batches
carry no schema of their own — like rows, they are aligned with the producing
operator's schema.

A batch's column entries are either plain Python lists or
:class:`~repro.relational.columns.TypedColumn` buffers (fixed-width columns
upgraded via :meth:`RowBatch.ensure_typed`).  Both kinds support the same
read protocol (``len``, indexing, iteration, ``count``), so operator code
that walks values works unchanged, while kernels and sizing take the typed
fast path when it is available.
"""

from __future__ import annotations

from itertools import compress
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.relational.columns import TypedColumn, build_typed_column
from repro.relational.schema import Schema
from repro.relational.types import value_size

#: Default number of rows per batch in batch-at-a-time operator execution.
#: Large enough to amortise per-batch overhead, small enough that partially
#: consumed pipelines (LIMIT) do not overshoot badly.
DEFAULT_BATCH_SIZE = 1024

#: One column of a batch: a plain value list or a typed buffer.
ColumnData = Union[List[Any], TypedColumn]


class Row(tuple):
    """An immutable row of values aligned with some :class:`Schema`."""

    __slots__ = ()

    def __new__(cls, values: Iterable[Any]) -> "Row":
        return super().__new__(cls, tuple(values))

    def project(self, positions: Sequence[int]) -> "Row":
        """Return a row containing only the values at ``positions``."""
        return Row(self[position] for position in positions)

    def concat(self, other: Sequence[Any]) -> "Row":
        """Return this row followed by ``other`` (used by joins)."""
        return Row(tuple(self) + tuple(other))

    def append(self, value: Any) -> "Row":
        """Return this row with ``value`` added at the end (UDF result)."""
        return Row(tuple(self) + (value,))

    def replace(self, position: int, value: Any) -> "Row":
        values = list(self)
        values[position] = value
        return Row(values)

    def as_dict(self, schema: Schema) -> Dict[str, Any]:
        """Map qualified column names to values (for display and tests)."""
        return dict(zip(schema.qualified_names(), self))


def _as_list(column: ColumnData) -> List[Any]:
    """A column's values as a plain list (cached inside typed columns)."""
    return column.to_list() if isinstance(column, TypedColumn) else column


class RowBatch:
    """An ordered run of rows processed as one unit by batch operators.

    Storage is *columnar*: the batch holds one column buffer per column — a
    plain Python list, or a :class:`TypedColumn` for fixed-width data — so
    projection selects column references (O(columns), no per-row objects),
    predicate evaluation runs vectorized kernels or walks plain value tuples,
    and wire sizing prices fixed-width columns arithmetically.  Rows are
    materialised lazily — only when a consumer actually asks for
    :class:`Row` objects (the client/UDF shipping boundary, joins that build
    concatenated rows) — and cached, so a batch constructed from rows and
    only ever read as rows never transposes.  Batches are immutable by
    convention: every operation builds a new batch, and column buffers may be
    shared between batches, so callers must never mutate ``rows`` or
    ``columns``.
    """

    __slots__ = ("_rows", "_columns", "_length", "_size_memo")

    def __init__(self, rows: Iterable[Row]) -> None:
        materialised = rows if isinstance(rows, list) else list(rows)
        self._rows: Optional[List[Row]] = materialised
        self._columns: Optional[List[ColumnData]] = None
        self._length = len(materialised)
        self._size_memo: Optional[Tuple[Schema, int]] = None

    @classmethod
    def from_columns(
        cls, columns: Sequence[ColumnData], length: Optional[int] = None
    ) -> "RowBatch":
        """A batch over pre-built column buffers (not copied — do not mutate)."""
        batch = cls.__new__(cls)
        column_list = [
            column if isinstance(column, (list, TypedColumn)) else list(column)
            for column in columns
        ]
        batch._rows = None
        batch._columns = column_list
        batch._length = length if length is not None else (
            len(column_list[0]) if column_list else 0
        )
        batch._size_memo = None
        return batch

    # -- representations ---------------------------------------------------------

    @property
    def rows(self) -> List[Row]:
        """The batch as :class:`Row` objects, materialised lazily and cached."""
        rows = self._rows
        if rows is None:
            if self._columns:
                values_lists = [_as_list(column) for column in self._columns]
                rows = [Row(values) for values in zip(*values_lists)]
            else:
                rows = [Row(()) for _ in range(self._length)]
            self._rows = rows
        return rows

    @property
    def columns(self) -> List[ColumnData]:
        """The batch as column buffers, transposed lazily and cached."""
        columns = self._columns
        if columns is None:
            rows = self._rows
            columns = [list(values) for values in zip(*rows)] if rows else []
            self._columns = columns
        return columns

    def column(self, position: int) -> ColumnData:
        """One column's buffer (a list or a :class:`TypedColumn`), in row order."""
        return self.columns[position]

    def column_values(self, position: int) -> List[Any]:
        """One column's values as a plain Python list, in row order."""
        return _as_list(self.columns[position])

    def typed_column(self, position: int) -> Optional[TypedColumn]:
        """The column's typed buffer, or None when it is stored as a list.

        Reads the columnar representation only if it already exists — a
        rows-only batch is not transposed just to answer "not typed".
        """
        columns = self._columns
        if columns is None:
            return None
        entry = columns[position]
        return entry if isinstance(entry, TypedColumn) else None

    def ensure_typed(self, schema: Schema) -> "RowBatch":
        """Upgrade eligible fixed-width columns to typed buffers, in place.

        Only the batch's own column container is touched (buffers shared
        with other batches are replaced in this container, never mutated),
        and values are unchanged — the upgrade is invisible to every reader.
        Returns the batch itself for chaining.
        """
        if not self._length:
            return self
        fixed, _ = schema.size_plan()
        if not fixed:
            return self
        columns = self.columns
        for position, _width in fixed:
            entry = columns[position]
            if isinstance(entry, list):
                typed = build_typed_column(entry, schema.columns[position].dtype)
                if typed is not None:
                    columns[position] = typed
        return self

    def _value_tuples(self) -> Iterable[Tuple[Any, ...]]:
        """Row-shaped plain tuples, without allocating :class:`Row` objects."""
        if self._rows is not None:
            return self._rows
        if self._columns:
            return zip(*[_as_list(column) for column in self._columns])
        return (() for _ in range(self._length))

    # -- container protocol ------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return self._length > 0

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.rows[index]
        if self._rows is None and self._columns is not None:
            return Row(column[index] for column in self._columns)
        return self.rows[index]

    # -- column-wise operations --------------------------------------------------

    def take(self, indexes: Sequence[int]) -> "RowBatch":
        """The batch restricted to the rows at ``indexes``, column-wise.

        ``indexes`` may select, drop, duplicate, or reorder rows; selecting
        every row in order returns the batch itself.
        """
        if len(indexes) == self._length and all(
            index == position for position, index in enumerate(indexes)
        ):
            return self
        columns = self.columns
        selected: List[ColumnData] = []
        for column in columns:
            if isinstance(column, TypedColumn):
                selected.append(column.take(indexes))
            else:
                selected.append([column[index] for index in indexes])
        return RowBatch.from_columns(selected, len(indexes))

    def take_mask(self, mask) -> "RowBatch":
        """The batch restricted to rows where ``mask`` (bools, one per row) is truthy.

        ``mask`` may be a NumPy boolean array (the kernel path) or any
        sequence of bools.  Keeping every row returns the batch itself.
        """
        if not self._length:
            return RowBatch([])
        if hasattr(mask, "sum") and not isinstance(mask, (list, tuple)):
            kept = int(mask.sum())
            flags: Optional[List[Any]] = None
        else:
            flags = mask if isinstance(mask, list) else list(mask)
            kept = sum(1 for flag in flags if flag)
        if kept == self._length:
            return self
        selected: List[ColumnData] = []
        for column in self.columns:
            if isinstance(column, TypedColumn):
                selected.append(column.take_mask(mask))
            else:
                if flags is None:
                    flags = mask.tolist()
                selected.append(list(compress(column, flags)))
        return RowBatch.from_columns(selected, kept)

    def key_tuples(self, positions: Optional[Sequence[int]] = None) -> List[Tuple[Any, ...]]:
        """Per-row value tuples over ``positions`` (all columns when ``None``).

        The shared key-extraction path for duplicate elimination, hash joins
        and UDF argument shipping: values come straight off the column
        buffers as plain Python scalars, no :class:`Row` objects are
        allocated, and a zero-width key yields one empty tuple per row.
        """
        if not self._length:
            return []
        columns = self.columns
        if positions is not None:
            columns = [columns[position] for position in positions]
        if not columns:
            return [()] * self._length
        return list(zip(*[_as_list(column) for column in columns]))

    def project(self, positions: Sequence[int]) -> "RowBatch":
        """A new batch containing only the columns at ``positions``.

        Column-wise: the new batch shares the selected column buffers, so a
        mid-chain projection costs O(columns), not O(rows x columns).
        """
        if not self._length:
            return RowBatch([])
        columns = self.columns
        return RowBatch.from_columns(
            [columns[position] for position in positions], self._length
        )

    def filter(self, keep: Callable[[Sequence[Any]], Any]) -> "RowBatch":
        """A new batch containing only the rows for which ``keep`` is truthy.

        ``keep`` receives each row as a positional sequence (a plain value
        tuple on the columnar path — no :class:`Row` objects are allocated).
        """
        if not self._length:
            return RowBatch([])
        if self._rows is not None:
            return RowBatch([row for row in self._rows if keep(row)])
        kept = [
            index for index, values in enumerate(self._value_tuples()) if keep(values)
        ]
        return self.take(kept)

    def slice(self, start: int, stop: int) -> "RowBatch":
        """The batch restricted to rows ``start:stop`` (column-wise).

        Columnar-first: a batch that already has column buffers slices each
        buffer (typed columns slice into typed columns), so chunking a large
        columnar batch for shipping never materialises rows.
        """
        if self._columns is not None:
            length = max(0, min(stop, self._length) - max(0, start))
            return RowBatch.from_columns(
                [column[start:stop] for column in self._columns], length
            )
        return RowBatch(self._rows[start:stop])

    # -- sizing -------------------------------------------------------------------

    def size_bytes(self, schema: Schema) -> int:
        """Total wire size of the batch's rows under ``schema``.

        Fixed-width columns are priced from the schema's cached size plan —
        ``width x non-NULL count`` plus one byte per NULL — in one arithmetic
        step per column; only variable-width columns walk their values.  The
        result is memoized per schema, so repeated costing of the same batch
        payload (message accounting, suffix statistics) does not re-sum.
        """
        if not self._length:
            return 0
        memo = self._size_memo
        if memo is not None and memo[0] is schema:
            return memo[1]
        fixed, variable = schema.size_plan()
        columns = self.columns
        total = 0
        for position, width in fixed:
            column = columns[position]
            nulls = column.count(None)
            total += width * (len(column) - nulls) + nulls
        for position in variable:
            sizer = schema.columns[position].dtype.serialized_size
            total += sum(sizer(value) for value in _as_list(columns[position]))
        self._size_memo = (schema, total)
        return total

    def values_bytes(self) -> int:
        """Value-based wire size of the whole batch (``values_size`` row sum).

        Identical to ``sum(values_size(row) for row in batch)`` — summing a
        column at a time instead of a row at a time — with typed columns
        priced arithmetically (their strict builders guarantee each value
        sizes at exactly the column width; NULLs cost one byte).
        """
        total = 0
        for column in self.columns:
            if isinstance(column, TypedColumn):
                nulls = column.null_count
                total += column.width * (len(column) - nulls) + nulls
            else:
                total += sum(value_size(value) for value in column)
        return total

    def row_sizes(self, schema: Schema) -> List[int]:
        """Per-row wire sizes under ``schema`` (one int per row, in row order).

        Each entry equals ``row_size(row, schema)``; NULL-free typed columns
        contribute their width as a constant without touching values.
        """
        count = self._length
        sizes = [0] * count
        if not count:
            return sizes
        fixed, variable = schema.size_plan()
        columns = self.columns
        for position, width in fixed:
            column = columns[position]
            if isinstance(column, TypedColumn) and column.null_count == 0:
                for index in range(count):
                    sizes[index] += width
                continue
            for index, value in enumerate(_as_list(column)):
                sizes[index] += width if value is not None else 1
        for position in variable:
            sizer = schema.columns[position].dtype.serialized_size
            for index, value in enumerate(_as_list(columns[position])):
                sizes[index] += sizer(value)
        return sizes

    def value_sizes(self, positions: Sequence[int]) -> List[int]:
        """Per-row value-based sizes over ``positions``.

        Each entry equals ``values_size`` of that row's values at
        ``positions`` — the accounting used for UDF argument payloads.
        """
        count = self._length
        sizes = [0] * count
        if not count:
            return sizes
        columns = self.columns
        for position in positions:
            column = columns[position]
            if isinstance(column, TypedColumn):
                width = column.width
                if column.null_count == 0:
                    for index in range(count):
                        sizes[index] += width
                else:
                    for index, value in enumerate(column.to_list()):
                        sizes[index] += width if value is not None else 1
                continue
            for index, value in enumerate(column):
                sizes[index] += value_size(value)
        return sizes

    def __repr__(self) -> str:
        return f"RowBatch({self._length} rows)"


def concat_batches(
    batches: Sequence[RowBatch], column_count: Optional[int] = None
) -> RowBatch:
    """Concatenate batches column-wise into one batch.

    Typed columns stay typed when every input stores the position with the
    same dtype; otherwise the position falls back to one merged list.  With
    no (non-empty) input batches the result is empty; ``column_count`` pins
    the column structure for zero-column inputs whose length still matters.
    """
    non_empty = [batch for batch in batches if len(batch)]
    if not non_empty:
        return RowBatch([])
    if len(non_empty) == 1:
        return non_empty[0]
    total = sum(len(batch) for batch in non_empty)
    width = column_count if column_count is not None else len(non_empty[0].columns)
    if width == 0:
        return RowBatch.from_columns([], total)
    merged: List[ColumnData] = []
    for position in range(width):
        entries = [batch.columns[position] for batch in non_empty]
        if all(isinstance(entry, TypedColumn) for entry in entries) and (
            len({entry.dtype_name for entry in entries}) == 1
        ):
            merged.append(TypedColumn.concat(entries))
        else:
            values: List[Any] = []
            for entry in entries:
                values.extend(_as_list(entry))
            merged.append(values)
    return RowBatch.from_columns(merged, total)


def batches_of(rows: Iterable[Row], batch_size: int) -> Iterator[RowBatch]:
    """Chunk a row stream into :class:`RowBatch` es of at most ``batch_size``.

    The chunker pulls lazily: it never draws more than one batch ahead of the
    consumer, so partially consumed pipelines stop early.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    pending: List[Row] = []
    for row in rows:
        pending.append(row)
        if len(pending) >= batch_size:
            yield RowBatch(pending)
            pending = []
    if pending:
        yield RowBatch(pending)


def row_size(row: Sequence[Any], schema: Schema) -> int:
    """Wire size of ``row`` in bytes under ``schema``'s column types."""
    return sum(
        column.dtype.serialized_size(value) for column, value in zip(schema.columns, row)
    )


def rows_size(rows: Sequence[Sequence[Any]], schema: Schema) -> int:
    """Wire size of many rows under ``schema``, using the cached size plan.

    Delegates to :meth:`RowBatch.size_bytes` so the fixed/variable-width
    accounting exists in exactly one place.  Accepts a :class:`RowBatch`
    directly (preserving its typed columns and size memo).
    """
    if isinstance(rows, RowBatch):
        return rows.size_bytes(schema)
    if not rows:
        return 0
    return RowBatch(list(rows)).size_bytes(schema)


def values_size(values: Sequence[Any]) -> int:
    """Wire size of a bag of values whose types are not statically known."""
    return sum(value_size(value) for value in values)


def project_positions(schema: Schema, names: Sequence[str]) -> Tuple[int, ...]:
    """Resolve ``names`` to positions once, for use in per-row projection."""
    return tuple(schema.index_of(name) for name in names)
