"""Table and column statistics.

The optimizer's cost model (and the paper's own cost model parameters) need a
handful of statistics per relation:

* cardinality (row count),
* per-column distinct-value counts (the paper's ``D`` parameter is the ratio
  of distinct argument tuples to input cardinality),
* per-column and per-row average serialized sizes (the ``A``, ``I`` and ``P``
  parameters are ratios of sizes).

Statistics are computed eagerly from in-memory tables — they are exact, which
keeps the experiments deterministic — but the classes also accept externally
supplied estimates so the optimizer can be exercised on hypothetical tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.relational.schema import Schema
from repro.relational.tuples import Row

#: Default number of equi-width buckets for column histograms.
DEFAULT_HISTOGRAM_BUCKETS = 8


@dataclass
class Histogram:
    """A small equi-width histogram over one numeric column.

    ``counts[i]`` holds the number of values falling in the *i*-th of
    ``len(counts)`` equal-width buckets spanning ``[low, high]``.  The range
    selectivity estimate assumes values are uniform within a bucket, which
    is the classic System-R refinement over a flat range default.
    """

    low: float
    high: float
    counts: List[int]

    @property
    def total(self) -> int:
        return sum(self.counts)

    @classmethod
    def build(
        cls, values: Iterable[object], buckets: int = DEFAULT_HISTOGRAM_BUCKETS
    ) -> Optional["Histogram"]:
        """Build a histogram from numeric values; None if there are none."""
        numeric = [
            float(value)
            for value in values
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        ]
        if not numeric:
            return None
        low, high = min(numeric), max(numeric)
        if high <= low:
            return cls(low=low, high=high, counts=[len(numeric)])
        histogram = cls(low=low, high=high, counts=[0] * max(1, buckets))
        for value in numeric:
            histogram.add(value)
        return histogram

    def add(self, value: object) -> bool:
        """Count ``value`` if it falls inside the range; False otherwise."""
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return False
        value = float(value)
        if value < self.low or value > self.high:
            return False
        if self.high <= self.low:
            self.counts[0] += 1
            return True
        width = (self.high - self.low) / len(self.counts)
        bucket = min(int((value - self.low) / width), len(self.counts) - 1)
        self.counts[bucket] += 1
        return True

    def fraction_below(self, value: float) -> float:
        """Estimated fraction of values strictly below ``value``."""
        total = self.total
        if total <= 0:
            return 0.5
        if value <= self.low:
            return 0.0
        if value > self.high:
            return 1.0
        if self.high <= self.low:
            return 0.0 if value <= self.low else 1.0
        width = (self.high - self.low) / len(self.counts)
        covered = 0.0
        for index, count in enumerate(self.counts):
            start = self.low + index * width
            end = start + width
            if value >= end:
                covered += count
            elif value > start:
                covered += count * (value - start) / width
        return min(1.0, covered / total)

    def range_fraction(
        self, low: Optional[float] = None, high: Optional[float] = None
    ) -> float:
        """Estimated fraction of values in ``[low, high]`` (None = unbounded)."""
        below_high = 1.0 if high is None else self.fraction_below(float(high))
        below_low = 0.0 if low is None else self.fraction_below(float(low))
        return max(0.0, below_high - below_low)

    def to_dict(self) -> Dict[str, object]:
        return {"low": self.low, "high": self.high, "counts": list(self.counts)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Histogram":
        return cls(
            low=float(payload["low"]),
            high=float(payload["high"]),
            counts=[int(count) for count in payload["counts"]],
        )


@dataclass
class ColumnStatistics:
    """Statistics for a single column of a relation."""

    name: str
    distinct_count: int = 0
    null_count: int = 0
    average_size: float = 0.0
    minimum: Optional[object] = None
    maximum: Optional[object] = None
    histogram: Optional[Histogram] = None

    @property
    def has_range(self) -> bool:
        return self.minimum is not None and self.maximum is not None


@dataclass
class TableStatistics:
    """Statistics for a whole relation."""

    row_count: int = 0
    average_row_size: float = 0.0
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics:
        if "." in name:
            name = name.partition(".")[2]
        if name not in self.columns:
            # SQL identifiers are case-insensitive: fall back to a
            # case-folded match before giving up on the name.
            lowered = name.lower()
            for key, stats in self.columns.items():
                if key.lower() == lowered:
                    return stats
            # Unknown columns get a neutral default so cost estimation can
            # proceed; this happens for derived columns (UDF results).
            return ColumnStatistics(name=name, distinct_count=max(1, self.row_count))
        return self.columns[name]

    def distinct_fraction(self, names: Sequence[str]) -> float:
        """Estimated fraction of rows that are distinct on ``names``.

        This is the paper's ``D`` parameter for a given argument-column set.
        Independence is assumed across columns, capped at 1.0.
        """
        if self.row_count <= 0:
            return 1.0
        distinct = 1.0
        for name in names:
            distinct *= max(1, self.column(name).distinct_count)
        distinct = min(distinct, float(self.row_count))
        return distinct / self.row_count

    def column_size_fraction(self, names: Sequence[str]) -> float:
        """Fraction of the average row size occupied by ``names`` (paper's ``A``)."""
        if self.average_row_size <= 0:
            return 1.0
        size = sum(self.column(name).average_size for name in names)
        return min(1.0, size / self.average_row_size)


def compute_column_statistics(
    name: str, values: Iterable[object]
) -> ColumnStatistics:
    """Compute exact statistics for one column from its values."""
    from repro.relational.types import value_size

    distinct = set()
    nulls = 0
    total_size = 0
    count = 0
    minimum = None
    maximum = None
    for value in values:
        count += 1
        total_size += value_size(value)
        if value is None:
            nulls += 1
            continue
        distinct.add(value)
        try:
            if minimum is None or value < minimum:
                minimum = value
            if maximum is None or value > maximum:
                maximum = value
        except TypeError:
            # Heterogeneous or unorderable values: skip range tracking.
            minimum = None
            maximum = None
    return ColumnStatistics(
        name=name,
        distinct_count=len(distinct),
        null_count=nulls,
        average_size=(total_size / count) if count else 0.0,
        minimum=minimum,
        maximum=maximum,
    )


def compute_table_statistics(schema: Schema, rows: Sequence[Row]) -> TableStatistics:
    """Compute exact statistics for a relation given its schema and rows."""
    from repro.relational.tuples import row_size

    stats = TableStatistics(row_count=len(rows))
    if rows:
        stats.average_row_size = sum(row_size(row, schema) for row in rows) / len(rows)
    for position, column in enumerate(schema.columns):
        stats.columns[column.name] = compute_column_statistics(
            column.name, (row[position] for row in rows)
        )
    return stats


def merge_statistics(
    left: TableStatistics, right: TableStatistics, estimated_rows: int
) -> TableStatistics:
    """Statistics for the result of joining two relations.

    Column statistics are carried over from both sides; distinct counts are
    capped at the estimated output cardinality.
    """
    merged = TableStatistics(
        row_count=estimated_rows,
        average_row_size=left.average_row_size + right.average_row_size,
    )
    for source in (left, right):
        for name, column in source.columns.items():
            capped = ColumnStatistics(
                name=name,
                distinct_count=min(column.distinct_count, max(1, estimated_rows)),
                null_count=column.null_count,
                average_size=column.average_size,
                minimum=column.minimum,
                maximum=column.maximum,
            )
            merged.columns.setdefault(name, capped)
    return merged


def apply_observed_evidence(
    stats: TableStatistics, distinct_evidence: Mapping[str, float]
) -> TableStatistics:
    """Overlay runtime-observed distinct counts onto ``stats``.

    ``distinct_evidence`` maps bare column names to distinct-count estimates
    derived from observed predicate selectivities.  Columns the statistics
    already describe keep their computed values — evidence only replaces the
    neutral ``distinct_count = row_count`` default returned for columns the
    catalog knows nothing about (UDF results, derived columns).
    """
    if not distinct_evidence:
        return stats
    patched = TableStatistics(
        row_count=stats.row_count,
        average_row_size=stats.average_row_size,
        columns=dict(stats.columns),
    )
    known = {key.lower() for key in patched.columns}
    for name, distinct in distinct_evidence.items():
        bare = name.partition(".")[2] if "." in name else name
        if bare.lower() in known:
            continue
        capped = min(max(1, int(round(distinct))), max(1, stats.row_count))
        patched.columns[bare] = ColumnStatistics(name=bare, distinct_count=capped)
    return patched


def scale_statistics(stats: TableStatistics, selectivity: float) -> TableStatistics:
    """Statistics after a filter of the given selectivity."""
    selectivity = min(max(selectivity, 0.0), 1.0)
    new_rows = int(round(stats.row_count * selectivity))
    scaled = TableStatistics(row_count=new_rows, average_row_size=stats.average_row_size)
    for name, column in stats.columns.items():
        scaled.columns[name] = ColumnStatistics(
            name=name,
            distinct_count=min(column.distinct_count, max(1, new_rows)),
            null_count=min(column.null_count, new_rows),
            average_size=column.average_size,
            minimum=column.minimum,
            maximum=column.maximum,
        )
    return scaled
