"""Vectorized expression kernels over typed column buffers.

:func:`compile_filter` and :func:`compile_expression` translate a scalar
expression tree (:mod:`repro.relational.expressions`) into a NumPy kernel
that evaluates the whole batch at once, with SQL three-valued logic carried
in validity masks.  Compilation is *conservative*: it returns ``None`` —
leaving the caller on the scalar row-at-a-time path — whenever vectorized
evaluation could diverge from the scalar semantics:

* function calls (UDFs) are never vectorized;
* column references must be fixed-width (INTEGER/FLOAT/BOOLEAN);
* arithmetic over booleans is rejected (``True + True`` is ``2`` in Python
  but ``True`` in NumPy);
* literals must be plain ``bool``/``int``/``float`` within int64 range.

A compiled kernel can still decline *per batch*: when a referenced column is
not stored typed in some batch (mixed-type data that failed the strict
builder), the kernel returns ``None`` for that batch and the caller falls
back to the scalar path for it.

Three-valued logic: every compiled node produces ``(values, valid)`` where
``valid`` is ``None`` (everything valid) or a boolean mask.  Comparisons and
arithmetic are NULL when either operand is NULL; AND/OR follow Kleene logic
(``x AND FALSE`` is FALSE even when ``x`` is NULL).  Division by zero raises
:class:`~repro.errors.ExpressionError` exactly like the scalar path —
checked only where both operands are valid, so a NULL-masked zero divisor
does not raise.

Documented divergences from the scalar path (accepted for speed): integer
arithmetic wraps at int64 instead of growing arbitrarily, and int-vs-float
comparisons round the int to float64 first.  Both are out of range for the
workloads here; the equivalence tests bound their inputs accordingly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ExpressionError
from repro.relational import columns as _columns
from repro.relational.columns import TypedColumn, vectorization_enabled
from repro.relational.expressions import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
)
from repro.relational.schema import Schema

#: Static type kinds propagated through compilation.
_BOOL, _INT, _FLOAT = "b", "i", "f"

_KIND_BY_DTYPE = {"BOOLEAN": _BOOL, "INTEGER": _INT, "FLOAT": _FLOAT}
_DTYPE_BY_KIND = {_BOOL: "BOOLEAN", _INT: "INTEGER", _FLOAT: "FLOAT"}

#: A compiled node: ``(typed columns by position, batch length) -> (values, valid)``.
#: ``values`` is an ndarray or a Python scalar; ``valid`` is a boolean ndarray
#: or ``None`` meaning "every slot valid".
_Node = Callable[[Dict[int, TypedColumn], int], Tuple[Any, Any]]


class _NotVectorizable(Exception):
    """Raised during compilation when the tree cannot be vectorized."""


def _np():
    return _columns.np


def _as_bool_array(values: Any, length: int):
    np = _np()
    if isinstance(values, np.ndarray):
        if values.dtype == np.bool_:
            return values
        return values.astype(bool)
    return np.full(length, bool(values))


def _and_valid(left: Any, right: Any):
    if left is None:
        return right
    if right is None:
        return left
    return left & right


def _compile_node(expression: Expression, schema: Schema) -> Tuple[_Node, str, List[int]]:
    """Compile one node; returns (node fn, static kind, referenced positions)."""
    np = _np()

    if isinstance(expression, Literal):
        value = expression.value
        if type(value) is bool:
            kind = _BOOL
        elif type(value) is int:
            if not (-(2**63) <= value <= 2**63 - 1):
                raise _NotVectorizable("integer literal out of int64 range")
            kind = _INT
        elif type(value) is float:
            kind = _FLOAT
        else:
            raise _NotVectorizable(f"literal {value!r} is not vectorizable")

        def literal_node(arrays, length):
            return value, None

        return literal_node, kind, []

    if isinstance(expression, ColumnRef):
        position = schema.index_of(expression.name)
        dtype_name = schema.columns[position].dtype.name
        kind = _KIND_BY_DTYPE.get(dtype_name)
        if kind is None:
            raise _NotVectorizable(f"column {expression.name} is not fixed-width")

        def column_node(arrays, length):
            column = arrays[position]
            return column.data, column.validity

        return column_node, kind, [position]

    if isinstance(expression, Comparison):
        left, _lk, left_positions = _compile_node(expression.left, schema)
        right, _rk, right_positions = _compile_node(expression.right, schema)
        operator = expression.operator
        ops = {
            "=": np.equal,
            "<>": np.not_equal,
            "!=": np.not_equal,
            "<": np.less,
            "<=": np.less_equal,
            ">": np.greater,
            ">=": np.greater_equal,
        }
        op = ops[operator]

        def comparison_node(arrays, length):
            a, a_valid = left(arrays, length)
            b, b_valid = right(arrays, length)
            return op(a, b), _and_valid(a_valid, b_valid)

        return comparison_node, _BOOL, left_positions + right_positions

    if isinstance(expression, Arithmetic):
        left, left_kind, left_positions = _compile_node(expression.left, schema)
        right, right_kind, right_positions = _compile_node(expression.right, schema)
        if _BOOL in (left_kind, right_kind):
            raise _NotVectorizable("arithmetic over booleans diverges from Python")
        operator = expression.operator
        kind = _FLOAT if (operator == "/" or _FLOAT in (left_kind, right_kind)) else _INT
        positions = left_positions + right_positions

        if operator == "/":

            def divide_node(arrays, length):
                a, a_valid = left(arrays, length)
                b, b_valid = right(arrays, length)
                valid = _and_valid(a_valid, b_valid)
                divisor = np.asarray(b)
                zero = divisor == 0
                bad = zero if valid is None else (zero & valid)
                if np.any(bad):
                    raise ExpressionError(f"division by zero in {expression}")
                if np.any(zero):
                    divisor = np.where(zero, 1, divisor)
                return np.true_divide(a, divisor), valid

            return divide_node, kind, positions

        ops = {"+": np.add, "-": np.subtract, "*": np.multiply}
        op = ops[operator]

        def arithmetic_node(arrays, length):
            a, a_valid = left(arrays, length)
            b, b_valid = right(arrays, length)
            return op(a, b), _and_valid(a_valid, b_valid)

        return arithmetic_node, kind, positions

    if isinstance(expression, BooleanOp):
        compiled = [_compile_node(operand, schema) for operand in expression.operands]
        operands = [node for node, _kind, _positions in compiled]
        positions = [
            position for _node, _kind, nested in compiled for position in nested
        ]
        operator = expression.operator

        if operator == "NOT":
            inner = operands[0]

            def not_node(arrays, length):
                values, valid = inner(arrays, length)
                return ~_as_bool_array(values, length), valid

            return not_node, _BOOL, positions

        if operator == "AND":

            def and_node(arrays, length):
                any_false = None
                all_valid_true = None
                for operand in operands:
                    values, valid = operand(arrays, length)
                    truth = _as_bool_array(values, length)
                    if valid is None:
                        false_here = ~truth
                        valid_true = truth
                    else:
                        false_here = valid & ~truth
                        valid_true = valid & truth
                    any_false = (
                        false_here if any_false is None else any_false | false_here
                    )
                    all_valid_true = (
                        valid_true
                        if all_valid_true is None
                        else all_valid_true & valid_true
                    )
                return all_valid_true, any_false | all_valid_true

            return and_node, _BOOL, positions

        def or_node(arrays, length):
            any_true = None
            all_valid_false = None
            for operand in operands:
                values, valid = operand(arrays, length)
                truth = _as_bool_array(values, length)
                if valid is None:
                    true_here = truth
                    valid_false = ~truth
                else:
                    true_here = valid & truth
                    valid_false = valid & ~truth
                any_true = true_here if any_true is None else any_true | true_here
                all_valid_false = (
                    valid_false
                    if all_valid_false is None
                    else all_valid_false & valid_false
                )
            return any_true, any_true | all_valid_false

        return or_node, _BOOL, positions

    # FunctionCall and anything unknown: never vectorized.
    raise _NotVectorizable(f"{type(expression).__name__} is not vectorizable")


def _gather_typed(batch, positions) -> Optional[Dict[int, TypedColumn]]:
    arrays: Dict[int, TypedColumn] = {}
    for position in positions:
        column = batch.typed_column(position)
        if column is None:
            return None
        arrays[position] = column
    return arrays


def compile_filter(
    expression: Expression, schema: Schema
) -> Optional[Callable[[Any], Optional[Any]]]:
    """Compile a predicate to a batch kernel returning a keep-mask.

    The kernel maps a :class:`~repro.relational.tuples.RowBatch` to a boolean
    ndarray marking the rows a Filter keeps — predicate TRUE only; FALSE and
    NULL rows are dropped, exactly like the scalar path.  Returns ``None``
    when the expression cannot be vectorized at all; the kernel itself
    returns ``None`` for batches whose referenced columns are not typed.
    """
    if not vectorization_enabled():
        return None
    try:
        root, _kind, positions = _compile_node(expression, schema)
    except _NotVectorizable:
        return None
    unique_positions = sorted(set(positions))

    def kernel(batch):
        arrays = _gather_typed(batch, unique_positions)
        if arrays is None:
            return None
        length = len(batch)
        values, valid = root(arrays, length)
        mask = _as_bool_array(values, length)
        if valid is not None:
            mask = mask & valid
        return mask

    return kernel


def compile_expression(
    expression: Expression, schema: Schema
) -> Optional[Callable[[Any], Optional[TypedColumn]]]:
    """Compile a scalar expression to a batch kernel producing a typed column.

    The kernel maps a :class:`~repro.relational.tuples.RowBatch` to a
    :class:`TypedColumn` holding the expression's value per row (NULLs
    carried in the validity mask), with the column's dtype derived from the
    expression — BOOLEAN for predicates, INTEGER/FLOAT for arithmetic — so
    the values match what the scalar evaluator would produce.  ``None``
    semantics mirror :func:`compile_filter`.
    """
    if not vectorization_enabled():
        return None
    try:
        root, kind, positions = _compile_node(expression, schema)
    except _NotVectorizable:
        return None
    unique_positions = sorted(set(positions))
    dtype_name = _DTYPE_BY_KIND[kind]
    np_module = _np()
    np_dtype = {
        "BOOLEAN": "bool",
        "INTEGER": "int64",
        "FLOAT": "float64",
    }[dtype_name]

    def kernel(batch):
        arrays = _gather_typed(batch, unique_positions)
        if arrays is None:
            return None
        length = len(batch)
        values, valid = root(arrays, length)
        if not isinstance(values, np_module.ndarray):
            values = np_module.full(length, values)
        values = values.astype(np_dtype, copy=False)
        if valid is None:
            return TypedColumn(dtype_name, values, None, 0)
        nulls = int(length - int(valid.sum()))
        if nulls == 0:
            return TypedColumn(dtype_name, values, None, 0)
        # Canonical zero at NULL slots, matching the column builders.
        values = np_module.where(valid, values, values.dtype.type(0))
        return TypedColumn(dtype_name, values, valid, nulls)

    return kernel
