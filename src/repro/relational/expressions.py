"""Scalar expression trees.

Expressions appear in WHERE clauses, projection lists, and join conditions.
The node types are deliberately small:

* :class:`Literal` — a constant;
* :class:`ColumnRef` — a (possibly qualified) column reference;
* :class:`Comparison` — ``=, <>, <, <=, >, >=`` over two sub-expressions;
* :class:`Arithmetic` — ``+, -, *, /`` over two sub-expressions;
* :class:`BooleanOp` — ``AND, OR, NOT``;
* :class:`FunctionCall` — a call to a named (possibly client-site) UDF.

Every expression can be *bound* against a schema, producing a plain Python
callable ``row -> value`` with all column positions resolved once.  Function
calls are resolved through a ``functions`` mapping supplied at bind time, so
the same expression tree can be bound either on the server (server-site UDFs)
or on the client (pushed-down predicates calling client-site UDFs).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExpressionError
from repro.relational.schema import Schema

#: Signature of a bound expression: maps a row to a value.
BoundExpression = Callable[[Sequence[Any]], Any]

#: Signature of a resolvable function: positional arguments to result.
ScalarFunction = Callable[..., Any]

_COMPARISON_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITHMETIC_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


class Expression:
    """Base class for scalar expressions."""

    def bind(
        self, schema: Schema, functions: Optional[Dict[str, ScalarFunction]] = None
    ) -> BoundExpression:
        """Resolve column references and function names; return ``row -> value``."""
        raise NotImplementedError

    def columns(self) -> FrozenSet[str]:
        """Qualified names of all columns referenced anywhere in the tree."""
        raise NotImplementedError

    def function_calls(self) -> List["FunctionCall"]:
        """All :class:`FunctionCall` nodes in the tree, in depth-first order."""
        return []

    def children(self) -> Tuple["Expression", ...]:
        return ()

    def walk(self) -> Iterator["Expression"]:
        """Depth-first traversal of the tree, including this node."""
        yield self
        for child in self.children():
            yield from child.walk()

    def evaluate(
        self,
        row: Sequence[Any],
        schema: Schema,
        functions: Optional[Dict[str, ScalarFunction]] = None,
    ) -> Any:
        """Convenience one-shot evaluation (binds on every call)."""
        return self.bind(schema, functions)(row)

    # Expressions are compared structurally, which the optimizer relies on to
    # recognise identical predicates across plan alternatives.
    def _key(self) -> Tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self._key() == other._key()  # type: ignore[union-attr]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))


class Literal(Expression):
    """A constant value."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def bind(self, schema: Schema, functions=None) -> BoundExpression:
        value = self.value
        return lambda row: value

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def _key(self) -> Tuple:
        return (self.value,)

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


class ColumnRef(Expression):
    """A reference to a column by (optionally qualified) name."""

    def __init__(self, name: str) -> None:
        self.name = name

    def bind(self, schema: Schema, functions=None) -> BoundExpression:
        position = schema.index_of(self.name)
        return lambda row: row[position]

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def _key(self) -> Tuple:
        return (self.name,)

    def __repr__(self) -> str:
        return f"ColumnRef({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Comparison(Expression):
    """A binary comparison producing a boolean."""

    def __init__(self, operator: str, left: Expression, right: Expression) -> None:
        if operator not in _COMPARISON_OPS:
            raise ExpressionError(f"unknown comparison operator {operator!r}")
        self.operator = operator
        self.left = left
        self.right = right

    def bind(self, schema: Schema, functions=None) -> BoundExpression:
        op = _COMPARISON_OPS[self.operator]
        left = self.left.bind(schema, functions)
        right = self.right.bind(schema, functions)

        def evaluate(row: Sequence[Any]) -> Optional[bool]:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            return op(a, b)

        return evaluate

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def function_calls(self) -> List["FunctionCall"]:
        return self.left.function_calls() + self.right.function_calls()

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def _key(self) -> Tuple:
        return (self.operator, self.left, self.right)

    def __repr__(self) -> str:
        return f"Comparison({self.operator!r}, {self.left!r}, {self.right!r})"

    def __str__(self) -> str:
        return f"{self.left} {self.operator} {self.right}"


class Arithmetic(Expression):
    """A binary arithmetic expression."""

    def __init__(self, operator: str, left: Expression, right: Expression) -> None:
        if operator not in _ARITHMETIC_OPS:
            raise ExpressionError(f"unknown arithmetic operator {operator!r}")
        self.operator = operator
        self.left = left
        self.right = right

    def bind(self, schema: Schema, functions=None) -> BoundExpression:
        op = _ARITHMETIC_OPS[self.operator]
        left = self.left.bind(schema, functions)
        right = self.right.bind(schema, functions)

        def evaluate(row: Sequence[Any]) -> Any:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            try:
                return op(a, b)
            except ZeroDivisionError as exc:
                raise ExpressionError(f"division by zero in {self}") from exc

        return evaluate

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def function_calls(self) -> List["FunctionCall"]:
        return self.left.function_calls() + self.right.function_calls()

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def _key(self) -> Tuple:
        return (self.operator, self.left, self.right)

    def __repr__(self) -> str:
        return f"Arithmetic({self.operator!r}, {self.left!r}, {self.right!r})"

    def __str__(self) -> str:
        return f"({self.left} {self.operator} {self.right})"


class BooleanOp(Expression):
    """``AND``, ``OR`` (n-ary) and ``NOT`` (unary)."""

    def __init__(self, operator: str, operands: Sequence[Expression]) -> None:
        operator = operator.upper()
        if operator not in ("AND", "OR", "NOT"):
            raise ExpressionError(f"unknown boolean operator {operator!r}")
        if operator == "NOT" and len(operands) != 1:
            raise ExpressionError("NOT takes exactly one operand")
        if operator in ("AND", "OR") and len(operands) < 2:
            raise ExpressionError(f"{operator} takes at least two operands")
        self.operator = operator
        self.operands = tuple(operands)

    def bind(self, schema: Schema, functions=None) -> BoundExpression:
        bound = [operand.bind(schema, functions) for operand in self.operands]
        operator = self.operator

        if operator == "NOT":
            inner = bound[0]

            def evaluate_not(row: Sequence[Any]) -> Optional[bool]:
                value = inner(row)
                if value is None:
                    return None
                return not bool(value)

            return evaluate_not

        if operator == "AND":

            def evaluate_and(row: Sequence[Any]) -> Optional[bool]:
                saw_null = False
                for operand in bound:
                    value = operand(row)
                    if value is None:
                        saw_null = True
                    elif not value:
                        return False
                return None if saw_null else True

            return evaluate_and

        def evaluate_or(row: Sequence[Any]) -> Optional[bool]:
            saw_null = False
            for operand in bound:
                value = operand(row)
                if value is None:
                    saw_null = True
                elif value:
                    return True
            return None if saw_null else False

        return evaluate_or

    def columns(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for operand in self.operands:
            result |= operand.columns()
        return result

    def function_calls(self) -> List["FunctionCall"]:
        calls: List[FunctionCall] = []
        for operand in self.operands:
            calls.extend(operand.function_calls())
        return calls

    def children(self) -> Tuple[Expression, ...]:
        return self.operands

    def _key(self) -> Tuple:
        return (self.operator, self.operands)

    def __repr__(self) -> str:
        return f"BooleanOp({self.operator!r}, {list(self.operands)!r})"

    def __str__(self) -> str:
        if self.operator == "NOT":
            return f"NOT ({self.operands[0]})"
        joiner = f" {self.operator} "
        return "(" + joiner.join(str(operand) for operand in self.operands) + ")"


class FunctionCall(Expression):
    """A call to a named scalar function (built-in or UDF).

    The function body is *not* stored in the expression; it is resolved at
    bind time through the ``functions`` mapping.  This keeps expression trees
    serialisable and lets the same tree be evaluated on either site.
    """

    def __init__(self, name: str, arguments: Sequence[Expression]) -> None:
        self.name = name
        self.arguments = tuple(arguments)

    def bind(self, schema: Schema, functions=None) -> BoundExpression:
        functions = functions or {}
        resolved = functions.get(self.name) or functions.get(self.name.lower())
        if resolved is None:
            raise ExpressionError(
                f"function {self.name!r} is not available at this site; "
                f"known functions: {sorted(functions)}"
            )
        bound_args = [argument.bind(schema, functions) for argument in self.arguments]

        def evaluate(row: Sequence[Any]) -> Any:
            return resolved(*[argument(row) for argument in bound_args])

        return evaluate

    def columns(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for argument in self.arguments:
            result |= argument.columns()
        return result

    def function_calls(self) -> List["FunctionCall"]:
        calls = [self]
        for argument in self.arguments:
            calls.extend(argument.function_calls())
        return calls

    def children(self) -> Tuple[Expression, ...]:
        return self.arguments

    def argument_columns(self) -> FrozenSet[str]:
        """Columns referenced by the call's arguments (the UDF's argument columns)."""
        return self.columns()

    def _key(self) -> Tuple:
        return (self.name.lower(), self.arguments)

    def __repr__(self) -> str:
        return f"FunctionCall({self.name!r}, {list(self.arguments)!r})"

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(argument) for argument in self.arguments)})"


def conjuncts(expression: Optional[Expression]) -> List[Expression]:
    """Split an expression into its top-level AND conjuncts.

    ``None`` yields an empty list; non-AND expressions yield themselves.
    """
    if expression is None:
        return []
    if isinstance(expression, BooleanOp) and expression.operator == "AND":
        result: List[Expression] = []
        for operand in expression.operands:
            result.extend(conjuncts(operand))
        return result
    return [expression]


def conjoin(expressions: Sequence[Expression]) -> Optional[Expression]:
    """Combine expressions with AND; returns None for an empty sequence."""
    expressions = [e for e in expressions if e is not None]
    if not expressions:
        return None
    if len(expressions) == 1:
        return expressions[0]
    return BooleanOp("AND", expressions)
