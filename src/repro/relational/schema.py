"""Schemas: ordered collections of typed, optionally table-qualified columns.

A :class:`Schema` is immutable.  Operators derive new schemas (projection,
concatenation for joins, appending UDF result columns) rather than mutating
existing ones, which keeps plan construction and property propagation simple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.types import DataType


@dataclass(frozen=True)
class Column:
    """A named, typed column, optionally qualified by a table (or alias) name."""

    name: str
    dtype: DataType
    table: Optional[str] = None

    @property
    def qualified_name(self) -> str:
        """``table.name`` when qualified, else just ``name``."""
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name

    def with_table(self, table: Optional[str]) -> "Column":
        """Return a copy of this column qualified by ``table``."""
        return Column(self.name, self.dtype, table)

    def matches(self, name: str) -> bool:
        """True when ``name`` (qualified or not) refers to this column."""
        if "." in name:
            table, _, column = name.partition(".")
            return self.name == column and self.table == table
        return self.name == name

    def __str__(self) -> str:
        return f"{self.qualified_name}:{self.dtype.name}"


class Schema:
    """An immutable, ordered sequence of :class:`Column` objects."""

    __slots__ = ("columns", "_index", "_size_plan")

    def __init__(self, columns: Iterable[Column]) -> None:
        self.columns: Tuple[Column, ...] = tuple(columns)
        index: Dict[str, List[int]] = {}
        for position, column in enumerate(self.columns):
            index.setdefault(column.name, []).append(position)
            if column.table:
                index.setdefault(column.qualified_name, []).append(position)
        self._index = index
        self._size_plan: Optional[
            Tuple[Tuple[Tuple[int, int], ...], Tuple[int, ...]]
        ] = None

    def size_plan(self) -> Tuple[Tuple[Tuple[int, int], ...], Tuple[int, ...]]:
        """``(fixed, variable)`` wire-sizing plan, computed once per schema.

        ``fixed`` holds ``(position, width)`` pairs for columns whose non-NULL
        values all serialize to ``width`` bytes; ``variable`` the positions
        whose values must be sized individually.  Batch size accounting
        charges fixed columns arithmetically and only walks variable ones.
        """
        plan = self._size_plan
        if plan is None:
            fixed = tuple(
                (position, column.dtype.fixed_size)
                for position, column in enumerate(self.columns)
                if column.dtype.fixed_size is not None
            )
            variable = tuple(
                position
                for position, column in enumerate(self.columns)
                if column.dtype.fixed_size is None
            )
            plan = (fixed, variable)
            self._size_plan = plan
        return plan

    # -- construction helpers ------------------------------------------------

    @classmethod
    def of(cls, *pairs: Tuple[str, DataType], table: Optional[str] = None) -> "Schema":
        """Build a schema from ``(name, dtype)`` pairs, all in one table."""
        return cls(Column(name, dtype, table) for name, dtype in pairs)

    def qualify(self, table: str) -> "Schema":
        """Return this schema with every column qualified by ``table``."""
        return Schema(column.with_table(table) for column in self.columns)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join: this schema's columns followed by ``other``'s."""
        return Schema(self.columns + other.columns)

    def append(self, column: Column) -> "Schema":
        """Return a schema with ``column`` added at the end (e.g. a UDF result)."""
        return Schema(self.columns + (column,))

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema containing only the named columns, in the given order."""
        return Schema(self.columns[self.index_of(name)] for name in names)

    def select_positions(self, positions: Sequence[int]) -> "Schema":
        """Schema containing the columns at ``positions``, in that order."""
        return Schema(self.columns[position] for position in positions)

    # -- lookups ---------------------------------------------------------------

    def index_of(self, name: str) -> int:
        """Position of the column referred to by ``name``.

        Raises :class:`SchemaError` if the name is unknown or ambiguous.
        """
        positions = self._index.get(name)
        if positions is None and "." in name:
            # A qualified name whose table prefix is unknown to this schema:
            # fall back to the bare column name.
            positions = self._index.get(name.partition(".")[2])
        if not positions:
            raise SchemaError(f"unknown column {name!r} in schema {self}")
        if len(positions) > 1:
            raise SchemaError(f"ambiguous column {name!r} in schema {self}")
        return positions[0]

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def has_column(self, name: str) -> bool:
        try:
            self.index_of(name)
        except SchemaError:
            return False
        return True

    def names(self) -> List[str]:
        return [column.name for column in self.columns]

    def qualified_names(self) -> List[str]:
        return [column.qualified_name for column in self.columns]

    def indexes_of(self, names: Sequence[str]) -> List[int]:
        return [self.index_of(name) for name in names]

    # -- protocol --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __getitem__(self, position: int) -> Column:
        return self.columns[position]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def __repr__(self) -> str:
        return "Schema(" + ", ".join(str(column) for column in self.columns) + ")"
