"""In-memory tables (heap files) with exact statistics."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.errors import SchemaError, TypeMismatchError
from repro.relational.schema import Schema
from repro.relational.statistics import TableStatistics, compute_table_statistics
from repro.relational.tuples import Row, RowBatch, row_size


class Table:
    """A named, in-memory relation.

    Rows are validated against the schema on insertion.  Statistics are
    recomputed lazily and cached; any mutation invalidates the cache.
    """

    def __init__(self, name: str, schema: Schema, rows: Optional[Iterable[Sequence[Any]]] = None) -> None:
        self.name = name
        # A table's own columns are qualified by the table name so that
        # multi-table queries can disambiguate.
        self.schema = schema if any(c.table for c in schema.columns) else schema.qualify(name)
        self._rows: List[Row] = []
        self._statistics: Optional[TableStatistics] = None
        self._batch: Optional[RowBatch] = None
        if rows is not None:
            self.insert_many(rows)

    # -- mutation ---------------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> None:
        """Insert one row, validating arity and column types."""
        if len(values) != len(self.schema):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.schema)} values, got {len(values)}"
            )
        for column, value in zip(self.schema.columns, values):
            try:
                column.dtype.validate(value)
            except TypeMismatchError as exc:
                raise TypeMismatchError(
                    f"column {column.qualified_name!r}: {exc}"
                ) from exc
        self._rows.append(Row(values))
        self._statistics = None
        self._batch = None

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> None:
        for values in rows:
            self.insert(values)

    def insert_dicts(self, records: Iterable[Dict[str, Any]]) -> None:
        """Insert rows given as ``{column_name: value}`` mappings."""
        names = self.schema.names()
        for record in records:
            unknown = set(record) - set(names)
            if unknown:
                raise SchemaError(
                    f"table {self.name!r} has no columns {sorted(unknown)!r}"
                )
            self.insert([record.get(name) for name in names])

    def clear(self) -> None:
        self._rows.clear()
        self._statistics = None
        self._batch = None

    # -- access -----------------------------------------------------------------

    @property
    def rows(self) -> List[Row]:
        """The rows of the table (do not mutate the returned list)."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def scan(self) -> Iterator[Row]:
        """Iterate over rows; semantically a sequential heap scan."""
        return iter(self._rows)

    def as_batch(self) -> RowBatch:
        """The whole table as one :class:`RowBatch`, cached until mutation.

        Fixed-width columns are upgraded to typed buffers once here — the
        ingestion point — so every scan hands typed columns to the pipeline
        without re-scanning values.
        """
        if self._batch is None:
            self._batch = RowBatch(list(self._rows)).ensure_typed(self.schema)
        return self._batch

    @property
    def statistics(self) -> TableStatistics:
        """Exact statistics, recomputed after any mutation."""
        if self._statistics is None:
            self._statistics = compute_table_statistics(self.schema, self._rows)
        return self._statistics

    def average_row_size(self) -> float:
        return self.statistics.average_row_size

    def total_size(self) -> int:
        """Total serialized size of the table in bytes."""
        return sum(row_size(row, self.schema) for row in self._rows)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """All rows as dictionaries keyed by qualified column name."""
        return [row.as_dict(self.schema) for row in self._rows]

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={len(self._rows)}, schema={self.schema})"
