"""Tables: a facade over in-memory rows or a durable paged heap file."""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
)

from repro.errors import SchemaError, TypeMismatchError
from repro.relational.schema import Schema
from repro.relational.statistics import TableStatistics, compute_table_statistics
from repro.relational.tuples import Row, RowBatch, row_size

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.storage.record import PagedTableStorage


class Table:
    """A named relation, in memory by default or paged when given a backend.

    The legacy in-memory path is unchanged: rows are validated against the
    schema on insertion, statistics are recomputed lazily and cached, and
    any mutation invalidates the cache.

    With ``storage`` set (a :class:`~repro.storage.record.PagedTableStorage`),
    rows live in a slotted-page heap file reached through the buffer pool:
    inserts append to the heap, every :meth:`as_batch` re-reads the pages
    through the pool (so buffer hit/miss counters reflect real scan
    traffic), and :attr:`statistics` come from the storage engine's catalog
    metadata via ``stats_provider`` instead of an exact in-memory pass.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Optional[Iterable[Sequence[Any]]] = None,
        storage: Optional["PagedTableStorage"] = None,
        stats_provider: Optional[Callable[[], TableStatistics]] = None,
        scan_listener: Optional[Callable[[], None]] = None,
        index_provider: Optional[Callable[[], Dict[str, Any]]] = None,
        delete_listener: Optional[Callable[[], None]] = None,
    ) -> None:
        self.name = name
        # A table's own columns are qualified by the table name so that
        # multi-table queries can disambiguate.
        self.schema = schema if any(c.table for c in schema.columns) else schema.qualify(name)
        self._storage = storage
        self._stats_provider = stats_provider
        self._scan_listener = scan_listener
        self._index_provider = index_provider
        self._delete_listener = delete_listener
        self._rows: List[Row] = []
        self._statistics: Optional[TableStatistics] = None
        self._batch: Optional[RowBatch] = None
        if rows is not None:
            self.insert_many(rows)

    @property
    def is_paged(self) -> bool:
        return self._storage is not None

    @property
    def storage(self) -> Optional["PagedTableStorage"]:
        return self._storage

    # -- mutation ---------------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> None:
        """Insert one row, validating arity and column types."""
        if len(values) != len(self.schema):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.schema)} values, got {len(values)}"
            )
        for column, value in zip(self.schema.columns, values):
            try:
                column.dtype.validate(value)
            except TypeMismatchError as exc:
                raise TypeMismatchError(
                    f"column {column.qualified_name!r}: {exc}"
                ) from exc
        if self._storage is not None:
            self._storage.append(tuple(values))
        else:
            self._rows.append(Row(values))
        self._statistics = None
        self._batch = None

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> None:
        for values in rows:
            self.insert(values)

    def insert_dicts(self, records: Iterable[Dict[str, Any]]) -> None:
        """Insert rows given as ``{column_name: value}`` mappings."""
        names = self.schema.names()
        for record in records:
            unknown = set(record) - set(names)
            if unknown:
                raise SchemaError(
                    f"table {self.name!r} has no columns {sorted(unknown)!r}"
                )
            self.insert([record.get(name) for name in names])

    def delete(self, predicate: Callable[[Row], bool]) -> int:
        """Delete every row matching ``predicate``; returns the count.

        On the paged path this tombstones the records in place (their space
        is reclaimed via the heap's free-space map) and notifies the storage
        engine so catalog statistics and secondary indexes stay current.
        """
        if self._storage is not None:
            deleted = self._storage.delete_where(
                lambda values: bool(predicate(Row(values)))
            )
            if deleted and self._delete_listener is not None:
                self._delete_listener()
        else:
            kept = [row for row in self._rows if not predicate(row)]
            deleted = len(self._rows) - len(kept)
            self._rows = kept
        if deleted:
            self._statistics = None
            self._batch = None
        return deleted

    def clear(self) -> None:
        if self._storage is not None:
            self._storage.clear()
        self._rows.clear()
        self._statistics = None
        self._batch = None

    # -- access -----------------------------------------------------------------

    @property
    def rows(self) -> List[Row]:
        """The rows of the table (do not mutate the returned list)."""
        if self._storage is not None:
            return [Row(values) for values in self._storage.read_all()]
        return self._rows

    def __len__(self) -> int:
        if self._storage is not None:
            return self._storage.row_count
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def scan(self) -> Iterator[Row]:
        """Iterate over rows; semantically a sequential heap scan."""
        return iter(self.rows)

    def as_batch(self) -> RowBatch:
        """The whole table as one :class:`RowBatch`.

        Fixed-width columns are upgraded to typed buffers once here — the
        ingestion point — so every scan hands typed columns to the pipeline
        without re-scanning values.  The in-memory path caches the batch
        until mutation; the paged path re-reads the heap through the buffer
        pool on every call, which is what makes the pool's hit/miss/eviction
        counters meaningful.
        """
        if self._storage is not None:
            if self._scan_listener is not None:
                self._scan_listener()
            return RowBatch(self.rows).ensure_typed(self.schema)
        if self._batch is None:
            self._batch = RowBatch(list(self._rows)).ensure_typed(self.schema)
        return self._batch

    def indexes(self) -> Dict[str, Any]:
        """Secondary index handles keyed by index name (paged tables only)."""
        if self._index_provider is not None:
            return self._index_provider()
        return {}

    @property
    def statistics(self) -> TableStatistics:
        """Exact statistics in memory; catalog estimates when paged."""
        if self._storage is not None and self._stats_provider is not None:
            return self._stats_provider()
        if self._statistics is None:
            self._statistics = compute_table_statistics(self.schema, self.rows)
        return self._statistics

    def average_row_size(self) -> float:
        return self.statistics.average_row_size

    def total_size(self) -> int:
        """Total serialized size of the table in bytes."""
        return sum(row_size(row, self.schema) for row in self.rows)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """All rows as dictionaries keyed by qualified column name."""
        return [row.as_dict(self.schema) for row in self.rows]

    def __repr__(self) -> str:
        backing = "paged" if self._storage is not None else "rows"
        return f"Table({self.name!r}, {backing}={len(self)}, schema={self.schema})"
