"""Sort-merge equi-join.

The semi-join receiver of the paper performs a merge join between the stream
of buffered records (sorted and grouped on the argument columns by the
sender) and the stream of UDF results coming back from the client.  This
operator is the general relational version; the execution-strategy code uses
the same merging logic on its internal streams.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import OperatorError
from repro.relational.operators.base import Operator
from repro.relational.tuples import Row


def _key_less_than(a: Tuple, b: Tuple) -> bool:
    """Total order on key tuples, with None sorting first."""
    for x, y in zip(a, b):
        if x is None and y is None:
            continue
        if x is None:
            return True
        if y is None:
            return False
        if x == y:
            continue
        return x < y
    return False


class MergeJoin(Operator):
    """Equi-join of two inputs already sorted on their join keys.

    ``assume_sorted`` skips the defensive order check (used when the inputs
    come from Sort operators and the extra comparison would be wasted).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        assume_sorted: bool = False,
    ) -> None:
        super().__init__([left, right])
        if len(left_keys) != len(right_keys) or not left_keys:
            raise OperatorError("MergeJoin requires matching, non-empty key lists")
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.assume_sorted = assume_sorted
        left_schema = left.output_schema()
        right_schema = right.output_schema()
        self._left_positions = tuple(left_schema.index_of(name) for name in self.left_keys)
        self._right_positions = tuple(right_schema.index_of(name) for name in self.right_keys)
        self.schema = left_schema.concat(right_schema)

    def _check_order(self, previous: Optional[Tuple], current: Tuple, side: str) -> None:
        if previous is not None and _key_less_than(current, previous):
            raise OperatorError(f"MergeJoin {side} input is not sorted on its keys")

    def _execute(self) -> Iterator[Row]:
        left_rows = list(self.children[0].execute())
        right_rows = list(self.children[1].execute())

        left_index = 0
        right_index = 0
        previous_left: Optional[Tuple] = None
        previous_right: Optional[Tuple] = None

        def left_key(index: int) -> Tuple:
            return tuple(left_rows[index][position] for position in self._left_positions)

        def right_key(index: int) -> Tuple:
            return tuple(right_rows[index][position] for position in self._right_positions)

        while left_index < len(left_rows) and right_index < len(right_rows):
            lkey = left_key(left_index)
            rkey = right_key(right_index)
            if not self.assume_sorted:
                self._check_order(previous_left, lkey, "left")
                self._check_order(previous_right, rkey, "right")
                previous_left, previous_right = lkey, rkey

            if any(value is None for value in lkey):
                left_index += 1
                continue
            if any(value is None for value in rkey):
                right_index += 1
                continue

            if _key_less_than(lkey, rkey):
                left_index += 1
            elif _key_less_than(rkey, lkey):
                right_index += 1
            else:
                # Gather the full group of equal keys on both sides.
                left_group: List[Row] = []
                while left_index < len(left_rows) and left_key(left_index) == lkey:
                    left_group.append(left_rows[left_index])
                    left_index += 1
                right_group: List[Row] = []
                while right_index < len(right_rows) and right_key(right_index) == rkey:
                    right_group.append(right_rows[right_index])
                    right_index += 1
                for left_row in left_group:
                    for right_row in right_group:
                        yield left_row.concat(right_row)

    def describe(self) -> str:
        pairs = ", ".join(f"{l}={r}" for l, r in zip(self.left_keys, self.right_keys))
        return f"MergeJoin({pairs})"
