"""Batch-at-a-time (vectorized) physical operators.

Each operator exposes a :class:`~repro.relational.operators.base.Operator`
interface: an output :class:`~repro.relational.schema.Schema` plus an
``execute_batches()`` generator yielding
:class:`~repro.relational.tuples.RowBatch` es (with ``execute()`` kept as a
row-iterator view for compatibility with the classical Volcano model).
Operators compose into trees; the root's ``execute_batches()`` drives the
whole pipeline lazily, one batch at a time.  Scans, filters, projections,
hash joins and aggregation are batch-native; the remaining operators are
row-oriented and chunked by the base class.
"""

from repro.relational.operators.base import Operator, CollectingOperator
from repro.relational.operators.scan import TableScan, RowSource
from repro.relational.operators.filter import Filter
from repro.relational.operators.project import Project, ProjectExpressions
from repro.relational.operators.sort import Sort
from repro.relational.operators.distinct import Distinct, DistinctOn
from repro.relational.operators.nested_loop_join import NestedLoopJoin
from repro.relational.operators.hash_join import HashJoin
from repro.relational.operators.merge_join import MergeJoin
from repro.relational.operators.aggregate import Aggregate, AggregateSpec
from repro.relational.operators.limit import Limit
from repro.relational.operators.materialize import Materialize

__all__ = [
    "Operator",
    "CollectingOperator",
    "TableScan",
    "RowSource",
    "Filter",
    "Project",
    "ProjectExpressions",
    "Sort",
    "Distinct",
    "DistinctOn",
    "NestedLoopJoin",
    "HashJoin",
    "MergeJoin",
    "Aggregate",
    "AggregateSpec",
    "Limit",
    "Materialize",
]
