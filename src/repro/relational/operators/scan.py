"""Leaf operators: table scans and generic row sources."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.relational.operators.base import Operator
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.tuples import Row, RowBatch


class TableScan(Operator):
    """A sequential scan over a catalog table, with an optional alias.

    When an alias is given the output schema is re-qualified by the alias so
    self-joins and aliased queries resolve correctly.
    """

    def __init__(self, table: Table, alias: Optional[str] = None) -> None:
        super().__init__()
        self.table = table
        self.alias = alias or table.name
        base = Schema(
            column.with_table(None) for column in table.schema.columns
        )
        self.schema = base.qualify(self.alias)

    def _execute_batches(self, batch_size: int) -> Iterator[RowBatch]:
        # Slice the table's cached columnar batch so typed column buffers
        # built once at ingestion flow into the pipeline.
        batch = self.table.as_batch()
        for start in range(0, len(batch), batch_size):
            yield batch.slice(start, start + batch_size)

    def describe(self) -> str:
        if self.alias != self.table.name:
            return f"TableScan({self.table.name} AS {self.alias})"
        return f"TableScan({self.table.name})"


class RowSource(Operator):
    """A leaf operator over rows produced by a callable or iterable.

    Useful for streaming rows out of non-table sources (e.g. the receiver side
    of a network transfer) while still fitting the operator interface.
    """

    def __init__(self, schema: Schema, source: Callable[[], Iterable[Row]]) -> None:
        super().__init__()
        self.schema = schema
        self._source = source

    def _execute(self) -> Iterator[Row]:
        for row in self._source():
            yield row if isinstance(row, Row) else Row(row)

    def describe(self) -> str:
        return "RowSource"
