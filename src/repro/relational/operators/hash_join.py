"""Hash equi-join."""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import OperatorError
from repro.relational.operators.base import Operator
from repro.relational.tuples import RowBatch


class HashJoin(Operator):
    """Equi-join by building a hash table on the inner (right) input.

    ``left_keys`` and ``right_keys`` are parallel lists of column names from
    the respective inputs.  NULL keys never match (SQL semantics).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
    ) -> None:
        super().__init__([left, right])
        if len(left_keys) != len(right_keys) or not left_keys:
            raise OperatorError("HashJoin requires matching, non-empty key lists")
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        left_schema = left.output_schema()
        right_schema = right.output_schema()
        self._left_positions = tuple(left_schema.index_of(name) for name in self.left_keys)
        self._right_positions = tuple(right_schema.index_of(name) for name in self.right_keys)
        self.schema = left_schema.concat(right_schema)

    def _execute_batches(self, batch_size: int) -> Iterator[RowBatch]:
        left, right = self.children
        # Build side stores plain value tuples (no Row objects); the probe
        # side collects matching left indexes so the output's left half is a
        # column-wise take that keeps typed buffers typed.
        table: Dict[Tuple, List[Tuple]] = {}
        for batch in right.execute_batches(batch_size):
            value_tuples = None
            for index, key in enumerate(batch.key_tuples(self._right_positions)):
                if any(value is None for value in key):
                    continue
                if value_tuples is None:
                    value_tuples = batch.key_tuples()
                table.setdefault(key, []).append(value_tuples[index])
        # Probe one input batch at a time; an output batch holds the matches
        # of one probe batch (it may be smaller or larger than batch_size
        # depending on the join fan-out).
        for batch in left.execute_batches(batch_size):
            left_indexes: List[int] = []
            right_rows: List[Tuple] = []
            for index, key in enumerate(batch.key_tuples(self._left_positions)):
                matched = table.get(key)
                if matched is None or any(value is None for value in key):
                    continue
                for right_tuple in matched:
                    left_indexes.append(index)
                    right_rows.append(right_tuple)
            if not left_indexes:
                yield RowBatch([])
                continue
            left_part = batch.take(left_indexes)
            right_columns = [list(values) for values in zip(*right_rows)]
            yield RowBatch.from_columns(
                list(left_part.columns) + right_columns, len(left_indexes)
            )

    def describe(self) -> str:
        pairs = ", ".join(f"{l}={r}" for l, r in zip(self.left_keys, self.right_keys))
        return f"HashJoin({pairs})"
