"""Hash equi-join."""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import OperatorError
from repro.relational.operators.base import Operator
from repro.relational.tuples import Row, RowBatch


class HashJoin(Operator):
    """Equi-join by building a hash table on the inner (right) input.

    ``left_keys`` and ``right_keys`` are parallel lists of column names from
    the respective inputs.  NULL keys never match (SQL semantics).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
    ) -> None:
        super().__init__([left, right])
        if len(left_keys) != len(right_keys) or not left_keys:
            raise OperatorError("HashJoin requires matching, non-empty key lists")
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        left_schema = left.output_schema()
        right_schema = right.output_schema()
        self._left_positions = tuple(left_schema.index_of(name) for name in self.left_keys)
        self._right_positions = tuple(right_schema.index_of(name) for name in self.right_keys)
        self.schema = left_schema.concat(right_schema)

    def _execute_batches(self, batch_size: int) -> Iterator[RowBatch]:
        left, right = self.children
        table: Dict[Tuple, List[Row]] = {}
        for batch in right.execute_batches(batch_size):
            rows = None
            for index, key in enumerate(batch.key_tuples(self._right_positions)):
                if any(value is None for value in key):
                    continue
                if rows is None:
                    rows = batch.rows
                table.setdefault(key, []).append(rows[index])
        # Probe one input batch at a time; an output batch holds the matches
        # of one probe batch (it may be smaller or larger than batch_size
        # depending on the join fan-out).
        for batch in left.execute_batches(batch_size):
            matches: List[Row] = []
            rows = None
            for index, key in enumerate(batch.key_tuples(self._left_positions)):
                matched = table.get(key)
                if matched is None or any(value is None for value in key):
                    continue
                if rows is None:
                    rows = batch.rows
                left_row = rows[index]
                for right_row in matched:
                    matches.append(left_row.concat(right_row))
            yield RowBatch(matches)

    def describe(self) -> str:
        pairs = ", ".join(f"{l}={r}" for l, r in zip(self.left_keys, self.right_keys))
        return f"HashJoin({pairs})"
