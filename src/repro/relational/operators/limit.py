"""LIMIT / OFFSET operator."""

from __future__ import annotations

from typing import Iterator

from repro.errors import OperatorError
from repro.relational.operators.base import Operator
from repro.relational.tuples import RowBatch


class Limit(Operator):
    """Yields at most ``count`` rows after skipping ``offset`` rows.

    Batch-native so the requested batch size propagates to the child:
    the overshoot of a small LIMIT over an expensive child pipeline is
    bounded by one child batch, not the child's default batch size.
    """

    def __init__(self, child: Operator, count: int, offset: int = 0) -> None:
        super().__init__([child])
        if count < 0 or offset < 0:
            raise OperatorError("Limit count and offset must be non-negative")
        self.count = count
        self.offset = offset
        self.schema = child.output_schema()

    def _execute_batches(self, batch_size: int) -> Iterator[RowBatch]:
        produced = 0
        skipped = 0
        for batch in self.child().execute_batches(batch_size):
            start = min(len(batch), self.offset - skipped)
            skipped += start
            take = min(self.count - produced, len(batch) - start)
            if take > 0:
                produced += take
                if start == 0 and take == len(batch):
                    yield batch
                else:
                    yield batch.slice(start, start + take)
            if produced >= self.count:
                return

    def describe(self) -> str:
        offset = f" OFFSET {self.offset}" if self.offset else ""
        return f"Limit({self.count}{offset})"
