"""LIMIT / OFFSET operator."""

from __future__ import annotations

from typing import Iterator

from repro.errors import OperatorError
from repro.relational.operators.base import Operator
from repro.relational.tuples import Row


class Limit(Operator):
    """Yields at most ``count`` rows after skipping ``offset`` rows."""

    def __init__(self, child: Operator, count: int, offset: int = 0) -> None:
        super().__init__([child])
        if count < 0 or offset < 0:
            raise OperatorError("Limit count and offset must be non-negative")
        self.count = count
        self.offset = offset
        self.schema = child.output_schema()

    def execute(self) -> Iterator[Row]:
        produced = 0
        skipped = 0
        for row in self.child().execute():
            if skipped < self.offset:
                skipped += 1
                continue
            if produced >= self.count:
                return
            produced += 1
            yield row

    def describe(self) -> str:
        offset = f" OFFSET {self.offset}" if self.offset else ""
        return f"Limit({self.count}{offset})"
