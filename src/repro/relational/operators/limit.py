"""LIMIT / OFFSET operator."""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import OperatorError
from repro.relational.operators.base import Operator
from repro.relational.tuples import Row, RowBatch


class Limit(Operator):
    """Yields at most ``count`` rows after skipping ``offset`` rows.

    Batch-native so the requested batch size propagates to the child:
    the overshoot of a small LIMIT over an expensive child pipeline is
    bounded by one child batch, not the child's default batch size.
    """

    def __init__(self, child: Operator, count: int, offset: int = 0) -> None:
        super().__init__([child])
        if count < 0 or offset < 0:
            raise OperatorError("Limit count and offset must be non-negative")
        self.count = count
        self.offset = offset
        self.schema = child.output_schema()

    def _execute_batches(self, batch_size: int) -> Iterator[RowBatch]:
        produced = 0
        skipped = 0
        for batch in self.child().execute_batches(batch_size):
            kept: List[Row] = []
            for row in batch:
                if skipped < self.offset:
                    skipped += 1
                    continue
                if produced >= self.count:
                    break
                produced += 1
                kept.append(row)
            if kept:
                yield RowBatch(kept)
            if produced >= self.count:
                return

    def describe(self) -> str:
        offset = f" OFFSET {self.offset}" if self.offset else ""
        return f"Limit({self.count}{offset})"
