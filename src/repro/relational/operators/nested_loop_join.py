"""Nested-loops join, with an arbitrary join predicate."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.relational.expressions import Expression, ScalarFunction
from repro.relational.operators.base import Operator
from repro.relational.tuples import Row


class NestedLoopJoin(Operator):
    """Joins two inputs by materialising the inner and probing per outer row.

    With ``predicate=None`` this is a cross product.  The predicate is
    evaluated over the concatenated schema (outer columns then inner columns).
    """

    def __init__(
        self,
        outer: Operator,
        inner: Operator,
        predicate: Optional[Expression] = None,
        functions: Optional[Dict[str, ScalarFunction]] = None,
    ) -> None:
        super().__init__([outer, inner])
        self.predicate = predicate
        self.functions = functions or {}
        self.schema = outer.output_schema().concat(inner.output_schema())

    def _execute(self) -> Iterator[Row]:
        outer, inner = self.children
        inner_rows = list(inner.execute())
        bound = (
            self.predicate.bind(self.schema, self.functions)
            if self.predicate is not None
            else None
        )
        for outer_row in outer.execute():
            for inner_row in inner_rows:
                joined = outer_row.concat(inner_row)
                if bound is None or bound(joined):
                    yield joined

    def describe(self) -> str:
        return f"NestedLoopJoin({self.predicate if self.predicate else 'CROSS'})"
