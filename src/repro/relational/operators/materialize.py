"""Materialization operator: caches its child's output for repeated execution."""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.relational.operators.base import Operator
from repro.relational.tuples import Row


class Materialize(Operator):
    """Executes the child once and replays the cached rows on later executions.

    Useful when the same subplan feeds multiple consumers (e.g. an inner
    relation probed more than once), mirroring a temp-table spool.
    """

    def __init__(self, child: Operator) -> None:
        super().__init__([child])
        self.schema = child.output_schema()
        self._cache: Optional[List[Row]] = None

    def _execute(self) -> Iterator[Row]:
        if self._cache is None:
            self._cache = list(self.child().execute())
        yield from self._cache

    def invalidate(self) -> None:
        """Drop the cache so the next execution re-runs the child."""
        self._cache = None

    def describe(self) -> str:
        state = "cached" if self._cache is not None else "cold"
        return f"Materialize({state})"
