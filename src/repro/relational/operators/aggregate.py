"""Grouped aggregation operator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import OperatorError
from repro.relational.operators.base import Operator
from repro.relational.schema import Column, Schema
from repro.relational.tuples import Row, RowBatch, batches_of
from repro.relational.types import FLOAT, INTEGER, DataType


def _sum(values: List) -> Optional[float]:
    values = [v for v in values if v is not None]
    return sum(values) if values else None


def _avg(values: List) -> Optional[float]:
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else None


def _min(values: List):
    values = [v for v in values if v is not None]
    return min(values) if values else None


def _max(values: List):
    values = [v for v in values if v is not None]
    return max(values) if values else None


def _count(values: List) -> int:
    return sum(1 for v in values if v is not None)


_AGGREGATES: Dict[str, Tuple[Callable[[List], object], DataType]] = {
    "SUM": (_sum, FLOAT),
    "AVG": (_avg, FLOAT),
    "MIN": (_min, FLOAT),
    "MAX": (_max, FLOAT),
    "COUNT": (_count, INTEGER),
}


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate output: ``function(input_column) AS output_name``."""

    function: str
    input_column: Optional[str]
    output_name: str

    def __post_init__(self) -> None:
        if self.function.upper() not in _AGGREGATES:
            raise OperatorError(f"unknown aggregate function {self.function!r}")


class Aggregate(Operator):
    """Hash aggregation grouped on ``group_by`` columns.

    With an empty ``group_by`` a single row is produced (global aggregation),
    even over empty input — matching SQL semantics for COUNT.
    """

    def __init__(
        self,
        child: Operator,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ) -> None:
        super().__init__([child])
        child_schema = child.output_schema()
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        self._group_positions = tuple(child_schema.index_of(name) for name in self.group_by)
        self._input_positions = tuple(
            child_schema.index_of(spec.input_column) if spec.input_column else None
            for spec in self.aggregates
        )
        columns = [child_schema.column(name) for name in self.group_by]
        for spec in self.aggregates:
            _, dtype = _AGGREGATES[spec.function.upper()]
            columns.append(Column(spec.output_name, dtype))
        self.schema = Schema(columns)

    def _execute_batches(self, batch_size: int) -> Iterator[RowBatch]:
        # Column-wise accumulation: group keys and aggregate inputs are read
        # off the batch's column lists, and each group accumulates one value
        # list per aggregate — no Row objects are built before the output.
        groups: Dict[Tuple, List[List]] = {}
        order: List[Tuple] = []
        for batch in self.child().execute_batches(batch_size):
            keys = batch.key_tuples(self._group_positions)
            input_columns = [
                batch.column_values(position) if position is not None else None
                for position in self._input_positions
            ]
            for index, key in enumerate(keys):
                state = groups.get(key)
                if state is None:
                    state = groups[key] = [[] for _ in self.aggregates]
                    order.append(key)
                for values, column in zip(state, input_columns):
                    values.append(1 if column is None else column[index])

        if not groups and not self.group_by:
            groups[()] = [[] for _ in self.aggregates]
            order.append(())

        def result_rows() -> Iterator[Row]:
            for key in order:
                outputs = list(key)
                for spec, values in zip(self.aggregates, groups[key]):
                    function, _ = _AGGREGATES[spec.function.upper()]
                    outputs.append(function(values))
                yield Row(outputs)

        yield from batches_of(result_rows(), batch_size)

    def describe(self) -> str:
        aggs = ", ".join(
            f"{spec.function}({spec.input_column or '*'}) AS {spec.output_name}"
            for spec in self.aggregates
        )
        group = f" GROUP BY {', '.join(self.group_by)}" if self.group_by else ""
        return f"Aggregate({aggs}{group})"
