"""Selection (filter) operator."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.relational.expressions import Expression, ScalarFunction
from repro.relational.kernels import compile_filter
from repro.relational.operators.base import Operator
from repro.relational.tuples import RowBatch


class Filter(Operator):
    """Passes through rows for which the predicate evaluates to true.

    SQL three-valued logic applies: rows where the predicate evaluates to
    NULL are dropped, as are rows where it is false.

    When the predicate compiles to a vectorized kernel, each batch is
    evaluated column-at-a-time and rows are kept by mask; batches whose
    columns are not typed (and predicates that cannot be vectorized) take
    the scalar row-at-a-time path with identical semantics.
    """

    def __init__(
        self,
        child: Operator,
        predicate: Expression,
        functions: Optional[Dict[str, ScalarFunction]] = None,
    ) -> None:
        super().__init__([child])
        self.predicate = predicate
        self.functions = functions or {}
        self.schema = child.output_schema()

    def _execute_batches(self, batch_size: int) -> Iterator[RowBatch]:
        kernel = compile_filter(self.predicate, self.schema)
        bound = None
        for batch in self.child().execute_batches(batch_size):
            if kernel is not None:
                mask = kernel(batch)
                if mask is not None:
                    yield batch.take_mask(mask)
                    continue
            if bound is None:
                bound = self.predicate.bind(self.schema, self.functions)
            yield batch.filter(bound)

    def describe(self) -> str:
        return f"Filter({self.predicate})"
