"""Sort operator (blocking)."""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from repro.relational.operators.base import Operator
from repro.relational.tuples import Row


class _NullsFirstKey:
    """Sort key wrapper ordering None before any value, per column."""

    __slots__ = ("values",)

    def __init__(self, values: Tuple) -> None:
        self.values = values

    def __lt__(self, other: "_NullsFirstKey") -> bool:
        for a, b in zip(self.values, other.values):
            if a is None and b is None:
                continue
            if a is None:
                return True
            if b is None:
                return False
            if a == b:
                continue
            return a < b
        return False


class Sort(Operator):
    """Sorts the child's output on the named columns.

    ``descending`` flips the whole ordering (per-column direction mixing is
    not needed by the paper's plans and is intentionally omitted).
    """

    def __init__(self, child: Operator, column_names: Sequence[str], descending: bool = False) -> None:
        super().__init__([child])
        self.column_names = list(column_names)
        self.descending = descending
        self.schema = child.output_schema()
        self._positions = tuple(self.schema.index_of(name) for name in self.column_names)

    def _execute(self) -> Iterator[Row]:
        positions = self._positions
        rows = list(self.child().execute())
        rows.sort(
            key=lambda row: _NullsFirstKey(tuple(row[position] for position in positions)),
            reverse=self.descending,
        )
        yield from rows

    def describe(self) -> str:
        direction = " DESC" if self.descending else ""
        return f"Sort({', '.join(self.column_names)}{direction})"
