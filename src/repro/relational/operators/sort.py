"""Sort operator (blocking)."""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.relational import columns as typed_columns
from repro.relational.columns import vectorization_enabled
from repro.relational.operators.base import Operator
from repro.relational.tuples import RowBatch, concat_batches


class _NullsFirstKey:
    """Sort key wrapper ordering None before any value, per column."""

    __slots__ = ("values",)

    def __init__(self, values: Tuple) -> None:
        self.values = values

    def __lt__(self, other: "_NullsFirstKey") -> bool:
        for a, b in zip(self.values, other.values):
            if a is None and b is None:
                continue
            if a is None:
                return True
            if b is None:
                return False
            if a == b:
                continue
            return a < b
        return False


class Sort(Operator):
    """Sorts the child's output on the named columns.

    ``descending`` flips the whole ordering (per-column direction mixing is
    not needed by the paper's plans and is intentionally omitted).
    """

    def __init__(self, child: Operator, column_names: Sequence[str], descending: bool = False) -> None:
        super().__init__([child])
        self.column_names = list(column_names)
        self.descending = descending
        self.schema = child.output_schema()
        self._positions = tuple(self.schema.index_of(name) for name in self.column_names)

    def _execute_batches(self, batch_size: int) -> Iterator[RowBatch]:
        batch = concat_batches(
            list(self.child().execute_batches(batch_size)),
            column_count=len(self.schema),
        )
        if not len(batch):
            return
        order = self._sort_order(batch)
        result = batch.take(order)
        for start in range(0, len(result), batch_size):
            yield result.slice(start, start + batch_size)

    def _sort_order(self, batch: RowBatch) -> List[int]:
        """Row order after sorting, computed on key columns only.

        Single typed NULL-free ascending keys argsort in NumPy (stable, like
        ``list.sort``); everything else — multi-key, descending, NULLs,
        untyped columns, NaNs (whose ordering must match Python's) — uses the
        stable scalar sort with the NULLs-first key wrapper.
        """
        positions = self._positions
        if not positions:
            return list(range(len(batch)))
        if len(positions) == 1 and not self.descending and vectorization_enabled():
            column = batch.typed_column(positions[0])
            if column is not None and column.null_count == 0:
                data = column.data
                np = typed_columns.np
                if column.dtype_name != "FLOAT" or not np.isnan(data).any():
                    return np.argsort(data, kind="stable").tolist()
        key_columns = [batch.column_values(position) for position in positions]
        keys = list(zip(*key_columns))
        return sorted(
            range(len(batch)),
            key=lambda index: _NullsFirstKey(keys[index]),
            reverse=self.descending,
        )

    def describe(self) -> str:
        direction = " DESC" if self.descending else ""
        return f"Sort({', '.join(self.column_names)}{direction})"
