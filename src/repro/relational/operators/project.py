"""Projection operators: by column name and by arbitrary expression."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.relational.expressions import ColumnRef, Expression, ScalarFunction
from repro.relational.kernels import compile_expression
from repro.relational.operators.base import Operator
from repro.relational.schema import Column, Schema
from repro.relational.tuples import RowBatch
from repro.relational.types import DataType, FLOAT


class Project(Operator):
    """Projects the child's output onto the named columns, in order."""

    def __init__(self, child: Operator, column_names: Sequence[str]) -> None:
        super().__init__([child])
        child_schema = child.output_schema()
        self.column_names = list(column_names)
        self._positions = tuple(child_schema.index_of(name) for name in self.column_names)
        self.schema = child_schema.select_positions(self._positions)

    def _execute_batches(self, batch_size: int) -> Iterator[RowBatch]:
        positions = self._positions
        for batch in self.child().execute_batches(batch_size):
            yield batch.project(positions)

    def describe(self) -> str:
        return f"Project({', '.join(self.column_names)})"


class ProjectExpressions(Operator):
    """Projects the child's output onto arbitrary expressions.

    Each output column is ``(name, expression, dtype)``.  Plain column
    references keep their original type; computed expressions default to
    FLOAT unless a type is supplied.
    """

    def __init__(
        self,
        child: Operator,
        outputs: Sequence[Tuple[str, Expression, Optional[DataType]]],
        functions: Optional[Dict[str, ScalarFunction]] = None,
    ) -> None:
        super().__init__([child])
        self.outputs = list(outputs)
        self.functions = functions or {}
        child_schema = child.output_schema()
        columns: List[Column] = []
        for name, expression, dtype in self.outputs:
            if dtype is None:
                if isinstance(expression, ColumnRef):
                    dtype = child_schema.column(expression.name).dtype
                else:
                    dtype = FLOAT
            columns.append(Column(name, dtype))
        self.schema = Schema(columns)

    def _execute_batches(self, batch_size: int) -> Iterator[RowBatch]:
        # Per-output plans, resolved once: plain column references share the
        # child's column buffer, vectorizable expressions run as kernels, and
        # everything else evaluates scalar over plain value tuples.
        child_schema = self.child().output_schema()
        plans = []
        for _, expression, _ in self.outputs:
            if isinstance(expression, ColumnRef):
                plans.append(("ref", child_schema.index_of(expression.name), None))
            else:
                kernel = compile_expression(expression, child_schema)
                mode = "kernel" if kernel is not None else "scalar"
                plans.append((mode, kernel, expression))
        bound_cache: dict = {}
        for batch in self.child().execute_batches(batch_size):
            columns = []
            tuples = None
            for index, (mode, payload, expression) in enumerate(plans):
                if mode == "ref":
                    columns.append(batch.columns[payload])
                    continue
                if mode == "kernel":
                    column = payload(batch)
                    if column is not None:
                        columns.append(column)
                        continue
                bound = bound_cache.get(index)
                if bound is None:
                    bound = bound_cache[index] = expression.bind(
                        child_schema, self.functions
                    )
                if tuples is None:
                    tuples = batch.key_tuples()
                columns.append([bound(values) for values in tuples])
            yield RowBatch.from_columns(columns, len(batch))

    def describe(self) -> str:
        parts = ", ".join(f"{expr} AS {name}" for name, expr, _ in self.outputs)
        return f"ProjectExpressions({parts})"
