"""Duplicate-elimination operators.

The paper distinguishes *tuple duplicates* (identical in all columns) from
*argument duplicates* (identical only in the UDF's argument columns).
:class:`Distinct` removes tuple duplicates; :class:`DistinctOn` removes
argument duplicates, keeping the first representative row for each distinct
key — which is exactly what the semi-join sender needs before shipping
argument columns to the client.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Set, Tuple

from repro.relational.operators.base import Operator
from repro.relational.tuples import Row


class Distinct(Operator):
    """Removes rows identical in every column, preserving first-seen order."""

    def __init__(self, child: Operator) -> None:
        super().__init__([child])
        self.schema = child.output_schema()

    def _execute(self) -> Iterator[Row]:
        seen: Set[Tuple] = set()
        for row in self.child().execute():
            key = tuple(row)
            if key in seen:
                continue
            seen.add(key)
            yield row

    def describe(self) -> str:
        return "Distinct"


class DistinctOn(Operator):
    """Removes rows that duplicate earlier rows on the key columns only."""

    def __init__(self, child: Operator, key_columns: Sequence[str]) -> None:
        super().__init__([child])
        self.schema = child.output_schema()
        self.key_columns = list(key_columns)
        self._positions = tuple(self.schema.index_of(name) for name in self.key_columns)

    def _execute(self) -> Iterator[Row]:
        positions = self._positions
        seen: Set[Tuple] = set()
        for row in self.child().execute():
            key = tuple(row[position] for position in positions)
            if key in seen:
                continue
            seen.add(key)
            yield row

    def describe(self) -> str:
        return f"DistinctOn({', '.join(self.key_columns)})"
