"""Duplicate-elimination operators.

The paper distinguishes *tuple duplicates* (identical in all columns) from
*argument duplicates* (identical only in the UDF's argument columns).
:class:`Distinct` removes tuple duplicates; :class:`DistinctOn` removes
argument duplicates, keeping the first representative row for each distinct
key — which is exactly what the semi-join sender needs before shipping
argument columns to the client.

Both operators are batch-native and column-wise: keys come straight off the
batch's column lists (:meth:`~repro.relational.tuples.RowBatch.key_tuples`)
and surviving rows are selected by index
(:meth:`~repro.relational.tuples.RowBatch.take`) without materialising
:class:`~repro.relational.tuples.Row` objects.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Set, Tuple

from repro.relational.operators.base import Operator
from repro.relational.tuples import RowBatch


class Distinct(Operator):
    """Removes rows identical in every column, preserving first-seen order."""

    def __init__(self, child: Operator) -> None:
        super().__init__([child])
        self.schema = child.output_schema()

    def _execute_batches(self, batch_size: int) -> Iterator[RowBatch]:
        seen: Set[Tuple] = set()
        for batch in self.child().execute_batches(batch_size):
            kept: List[int] = []
            for index, key in enumerate(batch.key_tuples()):
                if key in seen:
                    continue
                seen.add(key)
                kept.append(index)
            if kept:
                yield batch.take(kept)

    def describe(self) -> str:
        return "Distinct"


class DistinctOn(Operator):
    """Removes rows that duplicate earlier rows on the key columns only."""

    def __init__(self, child: Operator, key_columns: Sequence[str]) -> None:
        super().__init__([child])
        self.schema = child.output_schema()
        self.key_columns = list(key_columns)
        self._positions = tuple(self.schema.index_of(name) for name in self.key_columns)

    def _execute_batches(self, batch_size: int) -> Iterator[RowBatch]:
        seen: Set[Tuple] = set()
        for batch in self.child().execute_batches(batch_size):
            kept: List[int] = []
            for index, key in enumerate(batch.key_tuples(self._positions)):
                if key in seen:
                    continue
                seen.add(key)
                kept.append(index)
            if kept:
                yield batch.take(kept)

    def describe(self) -> str:
        return f"DistinctOn({', '.join(self.key_columns)})"
