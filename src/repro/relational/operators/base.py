"""Operator base classes for the batch-at-a-time execution model.

Operators expose two public entry points that the rest of the system drives:

* :meth:`Operator.execute_batches` — the vectorized protocol: a stream of
  :class:`~repro.relational.tuples.RowBatch` es of (at most) ``batch_size``
  rows.
* :meth:`Operator.execute` — the classical row iterator, kept as a thin
  flattening view over the batch stream for callers that want rows.

Subclasses implement exactly one of the protected hooks:

* ``_execute_batches(batch_size)`` for batch-native operators (scans,
  filters, projections, hash joins, aggregation), or
* ``_execute()`` for row-oriented operators; the base class chunks their
  row stream into batches automatically.

Operators written against the pre-batching API (overriding the public
``execute()`` directly) keep working: the batch protocol falls back to
chunking their row stream.

Instrumentation (``rows_produced`` / ``batches_produced``) is updated in
exactly one place — the public :meth:`execute_batches` — so no combination
of ``run()``, executor metrics collection, and direct iteration can double
count.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.errors import OperatorError
from repro.relational.schema import Schema
from repro.relational.tuples import DEFAULT_BATCH_SIZE, Row, RowBatch, batches_of


class Operator:
    """A physical operator producing a stream of row batches (or rows).

    Subclasses must set :attr:`schema` before execution and implement
    :meth:`_execute` (row-at-a-time) or :meth:`_execute_batches`
    (batch-native).  ``rows_produced`` counts the rows this operator has
    handed to its consumer, maintained solely by :meth:`execute_batches`.
    """

    def __init__(self, children: Sequence["Operator"] = ()) -> None:
        self.children: List[Operator] = list(children)
        self.schema: Optional[Schema] = None
        self.batch_size: int = DEFAULT_BATCH_SIZE
        self.rows_produced = 0
        self.batches_produced = 0

    # -- subclass hooks ---------------------------------------------------------

    def _execute(self) -> Iterator[Row]:
        """Yield output rows.  Row-oriented subclasses implement this."""
        raise NotImplementedError

    def _execute_batches(self, batch_size: int) -> Iterator[RowBatch]:
        """Yield output batches.  Batch-native subclasses override this."""
        yield from batches_of(self._execute(), batch_size)

    # -- public protocol --------------------------------------------------------

    def execute(self) -> Iterator[Row]:
        """Yield output rows (a flattening view over :meth:`execute_batches`)."""
        for batch in self.execute_batches():
            yield from batch.rows

    def execute_batches(self, batch_size: Optional[int] = None) -> Iterator[RowBatch]:
        """Yield output batches of at most ``batch_size`` rows.

        This is the single instrumentation path: every row an operator
        produces is counted here, exactly once, no matter how the operator
        is driven (``run()``, ``execute()``, or batch iteration).
        """
        size = batch_size if batch_size is not None else self.batch_size
        if size < 1:
            raise OperatorError("batch_size must be at least 1")
        for batch in self._source_batches(size):
            if not batch:
                continue
            self.rows_produced += len(batch)
            self.batches_produced += 1
            yield batch

    def _source_batches(self, batch_size: int) -> Iterator[RowBatch]:
        if type(self).execute is not Operator.execute:
            # Pre-batching subclass overriding the public execute() directly:
            # chunk its row stream so batch consumers still work.
            return batches_of(self.execute(), batch_size)
        return self._execute_batches(batch_size)

    def output_schema(self) -> Schema:
        if self.schema is None:
            raise OperatorError(f"{type(self).__name__} has no schema")
        return self.schema

    # -- conveniences ----------------------------------------------------------

    def run(self) -> List[Row]:
        """Execute to completion and collect all rows (for tests and tools)."""
        result: List[Row] = []
        for batch in self.execute_batches():
            result.extend(batch.rows)
        return result

    def child(self) -> "Operator":
        """The single child of a unary operator."""
        if len(self.children) != 1:
            raise OperatorError(
                f"{type(self).__name__} expected exactly one child, has {len(self.children)}"
            )
        return self.children[0]

    def explain(self, indent: int = 0) -> str:
        """A human-readable, indented description of the operator tree."""
        lines = ["  " * indent + self.describe()]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{type(self).__name__}(schema={self.schema})"


class CollectingOperator(Operator):
    """A leaf operator over already materialised rows (or a whole batch).

    Accepts a :class:`RowBatch` directly so columnar callers (segmented
    adaptive execution re-running a slice of its input) keep typed column
    buffers through the leaf instead of round-tripping via rows.
    """

    def __init__(self, schema: Schema, rows) -> None:
        super().__init__()
        self.schema = schema
        self._batch = rows if isinstance(rows, RowBatch) else RowBatch(list(rows))

    def _execute_batches(self, batch_size: int) -> Iterator[RowBatch]:
        batch = self._batch
        for start in range(0, len(batch), batch_size):
            yield batch.slice(start, start + batch_size)

    def describe(self) -> str:
        return f"Collected({len(self._batch)} rows)"
