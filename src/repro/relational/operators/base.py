"""Operator base classes for the iterator execution model."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.errors import OperatorError
from repro.relational.schema import Schema
from repro.relational.tuples import Row


class Operator:
    """A physical operator producing a stream of rows.

    Subclasses must set :attr:`schema` before execution and implement
    :meth:`execute`.  ``rows_produced`` is updated by :meth:`run` and by the
    executor for instrumentation.
    """

    def __init__(self, children: Sequence["Operator"] = ()) -> None:
        self.children: List[Operator] = list(children)
        self.schema: Optional[Schema] = None
        self.rows_produced = 0

    # -- interface -------------------------------------------------------------

    def execute(self) -> Iterator[Row]:
        """Yield output rows.  Must be implemented by subclasses."""
        raise NotImplementedError

    def output_schema(self) -> Schema:
        if self.schema is None:
            raise OperatorError(f"{type(self).__name__} has no schema")
        return self.schema

    # -- conveniences ----------------------------------------------------------

    def run(self) -> List[Row]:
        """Execute to completion and collect all rows (for tests and tools)."""
        result = []
        for row in self.execute():
            self.rows_produced += 1
            result.append(row)
        return result

    def child(self) -> "Operator":
        """The single child of a unary operator."""
        if len(self.children) != 1:
            raise OperatorError(
                f"{type(self).__name__} expected exactly one child, has {len(self.children)}"
            )
        return self.children[0]

    def explain(self, indent: int = 0) -> str:
        """A human-readable, indented description of the operator tree."""
        lines = ["  " * indent + self.describe()]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{type(self).__name__}(schema={self.schema})"


class CollectingOperator(Operator):
    """A leaf operator over an already materialised list of rows."""

    def __init__(self, schema: Schema, rows: Sequence[Row]) -> None:
        super().__init__()
        self.schema = schema
        self._rows = list(rows)

    def execute(self) -> Iterator[Row]:
        yield from self._rows

    def describe(self) -> str:
        return f"Collected({len(self._rows)} rows)"
