"""The bound (logical) form of a query.

A :class:`BoundQuery` is what planners and the optimizer consume: tables are
resolved against the catalog, expressions are bound relational expression
trees, predicates are split into conjuncts, and every client-site UDF call
appearing anywhere in the query is catalogued with its argument columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.client.udf import UdfDefinition
from repro.relational.expressions import Expression, FunctionCall
from repro.relational.predicates import PredicateInfo
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import DataType


@dataclass
class BoundTable:
    """A FROM-list entry resolved against the catalog."""

    table: Table
    alias: str
    schema: Schema  # the table's schema re-qualified by the alias

    @property
    def row_count(self) -> int:
        return len(self.table)

    def __str__(self) -> str:
        if self.alias.lower() == self.table.name.lower():
            return self.table.name
        return f"{self.table.name} AS {self.alias}"


@dataclass
class OutputColumn:
    """One output column of the query."""

    name: str
    expression: Expression
    dtype: DataType

    def __str__(self) -> str:
        return f"{self.expression} AS {self.name}"


@dataclass
class ClientUdfCall:
    """A distinct client-site UDF invocation appearing in the query.

    ``call`` is the bound expression node; ``argument_columns`` are the
    qualified column names its arguments reference (the paper's "argument
    columns"); ``used_in_predicate`` / ``used_in_output`` record where its
    value is needed, which drives pushability analysis.
    """

    udf: UdfDefinition
    call: FunctionCall
    argument_columns: Tuple[str, ...]
    used_in_predicate: bool = False
    used_in_output: bool = False

    @property
    def name(self) -> str:
        return self.udf.name

    @property
    def result_column_name(self) -> str:
        return self.udf.result_column_name

    def __str__(self) -> str:
        return str(self.call)


@dataclass
class BoundQuery:
    """A fully bound SELECT query."""

    sql: str
    tables: List[BoundTable]
    outputs: List[OutputColumn]
    predicates: List[PredicateInfo]
    client_udf_calls: List[ClientUdfCall]
    combined_schema: Schema
    distinct: bool = False
    order_by: List[Tuple[Expression, bool]] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0

    # -- convenience views -------------------------------------------------------------

    @property
    def table_aliases(self) -> List[str]:
        return [table.alias for table in self.tables]

    @property
    def client_udf_names(self) -> Set[str]:
        return {call.udf.name for call in self.client_udf_calls}

    def udf_call_by_name(self, name: str) -> Optional[ClientUdfCall]:
        for call in self.client_udf_calls:
            if call.udf.name.lower() == name.lower():
                return call
        return None

    def join_predicates(self) -> List[PredicateInfo]:
        """Conjuncts referencing columns of more than one table and no UDF."""
        result = []
        for predicate in self.predicates:
            if predicate.references_udf:
                continue
            tables = self._tables_of(predicate.columns)
            if len(tables) > 1:
                result.append(predicate)
        return result

    def single_table_predicates(self, alias: str) -> List[PredicateInfo]:
        """UDF-free conjuncts referencing only the given table."""
        result = []
        for predicate in self.predicates:
            if predicate.references_udf:
                continue
            tables = self._tables_of(predicate.columns)
            if tables == {alias.lower()}:
                result.append(predicate)
        return result

    def udf_predicates(self) -> List[PredicateInfo]:
        """Conjuncts that mention at least one client-site UDF."""
        names = {name.lower() for name in self.client_udf_names}
        return [
            predicate
            for predicate in self.predicates
            if any(udf.lower() in names for udf in predicate.udf_names)
        ]

    def output_column_names(self) -> List[str]:
        return [output.name for output in self.outputs]

    def _tables_of(self, columns: FrozenSet[str]) -> Set[str]:
        """Lower-cased aliases of the tables the given columns belong to."""
        aliases = {table.alias.lower() for table in self.tables}
        owners: Set[str] = set()
        for name in columns:
            # A qualifier naming a table in the FROM list settles ownership
            # outright; asking each schema would mis-attribute ``R.K`` to
            # ``L`` when both tables carry a column ``K`` (schemas fall back
            # to the bare name for unknown prefixes).
            qualifier = name.partition(".")[0].lower() if "." in name else None
            if qualifier in aliases:
                owners.add(qualifier)
                continue
            for table in self.tables:
                if table.schema.has_column(name):
                    owners.add(table.alias.lower())
                    break
        return owners

    def describe(self) -> str:
        lines = [f"Query: {self.sql.strip()}"]
        lines.append("  tables: " + ", ".join(str(table) for table in self.tables))
        lines.append("  outputs: " + ", ".join(str(output) for output in self.outputs))
        if self.predicates:
            lines.append("  predicates: " + " AND ".join(str(p) for p in self.predicates))
        if self.client_udf_calls:
            lines.append(
                "  client-site UDFs: " + ", ".join(str(call) for call in self.client_udf_calls)
            )
        return "\n".join(lines)
