"""SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import LexerError

KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "AS",
    "LIMIT",
    "OFFSET",
    "DISTINCT",
    "ORDER",
    "BY",
    "ASC",
    "DESC",
    "TRUE",
    "FALSE",
    "NULL",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    COMMA = "comma"
    DOT = "dot"
    LPAREN = "lparen"
    RPAREN = "rparen"
    STAR = "star"
    END = "end"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def matches_keyword(self, keyword: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == keyword.upper()

    def __str__(self) -> str:
        return f"{self.type.value}:{self.value}"


_OPERATOR_CHARS = set("=<>!+-/*")
_TWO_CHAR_OPERATORS = {"<=", ">=", "<>", "!="}


class Lexer:
    """Turns SQL text into a list of tokens."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.position = 0

    def tokens(self) -> List[Token]:
        return list(self._scan())

    def _scan(self) -> Iterator[Token]:
        text = self.text
        length = len(text)
        while self.position < length:
            char = text[self.position]
            if char.isspace():
                self.position += 1
                continue
            if char.isalpha() or char == "_":
                yield self._identifier()
                continue
            if char.isdigit() or (
                char == "." and self.position + 1 < length and text[self.position + 1].isdigit()
            ):
                yield self._number()
                continue
            if char == "'":
                yield self._string()
                continue
            if char == ",":
                yield Token(TokenType.COMMA, ",", self.position)
                self.position += 1
                continue
            if char == ".":
                yield Token(TokenType.DOT, ".", self.position)
                self.position += 1
                continue
            if char == "(":
                yield Token(TokenType.LPAREN, "(", self.position)
                self.position += 1
                continue
            if char == ")":
                yield Token(TokenType.RPAREN, ")", self.position)
                self.position += 1
                continue
            if char == "*":
                yield Token(TokenType.STAR, "*", self.position)
                self.position += 1
                continue
            if char in _OPERATOR_CHARS:
                yield self._operator()
                continue
            raise LexerError(f"unexpected character {char!r}", self.position)
        yield Token(TokenType.END, "", self.position)

    def _identifier(self) -> Token:
        start = self.position
        text = self.text
        while self.position < len(text) and (text[self.position].isalnum() or text[self.position] == "_"):
            self.position += 1
        word = text[start : self.position]
        if word.upper() in KEYWORDS:
            return Token(TokenType.KEYWORD, word.upper(), start)
        return Token(TokenType.IDENTIFIER, word, start)

    def _number(self) -> Token:
        start = self.position
        text = self.text
        seen_dot = False
        while self.position < len(text):
            char = text[self.position]
            if char.isdigit():
                self.position += 1
            elif char == "." and not seen_dot:
                # Only treat the dot as part of the number when followed by a
                # digit; ``S.Change`` must lex as identifier-dot-identifier.
                if self.position + 1 < len(text) and text[self.position + 1].isdigit():
                    seen_dot = True
                    self.position += 1
                else:
                    break
            else:
                break
        return Token(TokenType.NUMBER, text[start : self.position], start)

    def _string(self) -> Token:
        start = self.position
        text = self.text
        self.position += 1  # opening quote
        characters: List[str] = []
        while self.position < len(text):
            char = text[self.position]
            if char == "'":
                if self.position + 1 < len(text) and text[self.position + 1] == "'":
                    characters.append("'")
                    self.position += 2
                    continue
                self.position += 1
                return Token(TokenType.STRING, "".join(characters), start)
            characters.append(char)
            self.position += 1
        raise LexerError("unterminated string literal", start)

    def _operator(self) -> Token:
        start = self.position
        text = self.text
        if text[start : start + 2] in _TWO_CHAR_OPERATORS:
            self.position += 2
            return Token(TokenType.OPERATOR, text[start : start + 2], start)
        self.position += 1
        return Token(TokenType.OPERATOR, text[start], start)


def tokenize(text: str) -> List[Token]:
    """Convenience wrapper returning the token list for ``text``."""
    return Lexer(text).tokens()
