"""A small SQL front end.

Covers the subset the paper's queries need: ``SELECT`` lists with expressions
and UDF calls, ``FROM`` lists with aliases, conjunctive ``WHERE`` clauses
with comparisons, arithmetic and UDF calls, and ``LIMIT``.  The pipeline is
lexer → parser → binder; the bound query (:class:`repro.sql.logical.BoundQuery`)
is what planners consume.
"""

from repro.sql.lexer import Lexer, Token, TokenType, tokenize
from repro.sql.ast import (
    SelectStatement,
    SelectItem,
    TableReference,
    AstExpression,
    AstColumn,
    AstLiteral,
    AstFunctionCall,
    AstBinaryOp,
    AstUnaryOp,
)
from repro.sql.parser import Parser, parse
from repro.sql.binder import Binder
from repro.sql.logical import BoundQuery, BoundTable, OutputColumn

__all__ = [
    "Lexer",
    "Token",
    "TokenType",
    "tokenize",
    "SelectStatement",
    "SelectItem",
    "TableReference",
    "AstExpression",
    "AstColumn",
    "AstLiteral",
    "AstFunctionCall",
    "AstBinaryOp",
    "AstUnaryOp",
    "Parser",
    "parse",
    "Binder",
    "BoundQuery",
    "BoundTable",
    "OutputColumn",
]
