"""Abstract syntax tree produced by the SQL parser.

The AST is purely syntactic: names are unresolved strings.  The binder
(:mod:`repro.sql.binder`) turns the AST into bound relational expressions and
a :class:`~repro.sql.logical.BoundQuery`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


class AstExpression:
    """Base class for syntactic expressions."""


@dataclass(frozen=True)
class AstLiteral(AstExpression):
    value: Union[int, float, str, bool, None]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class AstColumn(AstExpression):
    name: str
    table: Optional[str] = None

    @property
    def qualified_name(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name

    def __str__(self) -> str:
        return self.qualified_name


@dataclass(frozen=True)
class AstFunctionCall(AstExpression):
    name: str
    arguments: Tuple[AstExpression, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(argument) for argument in self.arguments)})"


@dataclass(frozen=True)
class AstBinaryOp(AstExpression):
    operator: str
    left: AstExpression
    right: AstExpression

    def __str__(self) -> str:
        return f"({self.left} {self.operator} {self.right})"


@dataclass(frozen=True)
class AstUnaryOp(AstExpression):
    operator: str
    operand: AstExpression

    def __str__(self) -> str:
        return f"{self.operator} ({self.operand})"


@dataclass(frozen=True)
class AstStar(AstExpression):
    """``*`` or ``alias.*`` in a select list."""

    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class SelectItem:
    """One entry of the select list: an expression with an optional alias."""

    expression: AstExpression
    alias: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.expression} AS {self.alias}" if self.alias else str(self.expression)


@dataclass(frozen=True)
class TableReference:
    """One entry of the FROM list: a table name with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name

    def __str__(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class OrderItem:
    expression: AstExpression
    descending: bool = False


@dataclass(frozen=True)
class CreateIndexStatement:
    """``CREATE INDEX name ON table (column) [USING BTREE|HASH]``."""

    name: str
    table: str
    column: str
    kind: str = "btree"

    def __str__(self) -> str:
        return (
            f"CREATE INDEX {self.name} ON {self.table} ({self.column}) "
            f"USING {self.kind.upper()}"
        )


@dataclass(frozen=True)
class DropIndexStatement:
    """``DROP INDEX name``."""

    name: str

    def __str__(self) -> str:
        return f"DROP INDEX {self.name}"


@dataclass
class SelectStatement:
    """A parsed SELECT statement."""

    items: List[SelectItem] = field(default_factory=list)
    tables: List[TableReference] = field(default_factory=list)
    where: Optional[AstExpression] = None
    distinct: bool = False
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0

    def __str__(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(str(item) for item in self.items))
        parts.append("FROM " + ", ".join(str(table) for table in self.tables))
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.order_by:
            columns = ", ".join(
                str(item.expression) + (" DESC" if item.descending else "") for item in self.order_by
            )
            parts.append(f"ORDER BY {columns}")
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)
