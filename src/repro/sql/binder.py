"""The binder: resolves a parsed statement against the catalog and UDF registry."""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import BindError
from repro.client.registry import UdfRegistry
from repro.client.udf import UdfDefinition
from repro.relational.catalog import Catalog
from repro.relational.expressions import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    Literal,
    conjuncts,
)
from repro.relational.predicates import PredicateInfo, estimate_selectivity
from repro.relational.schema import Schema
from repro.relational.statistics import TableStatistics
from repro.relational.types import BOOLEAN, FLOAT, STRING, DataType, INTEGER
from repro.sql.ast import (
    AstBinaryOp,
    AstColumn,
    AstExpression,
    AstFunctionCall,
    AstLiteral,
    AstStar,
    AstUnaryOp,
    SelectStatement,
)
from repro.sql.logical import BoundQuery, BoundTable, ClientUdfCall, OutputColumn
from repro.sql.parser import parse

_COMPARISON_OPERATORS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_ARITHMETIC_OPERATORS = {"+", "-", "*", "/"}
_BOOLEAN_OPERATORS = {"AND", "OR"}


class Binder:
    """Binds parsed statements into :class:`BoundQuery` objects."""

    def __init__(self, catalog: Catalog, udfs: Optional[UdfRegistry] = None) -> None:
        self.catalog = catalog
        self.udfs = udfs if udfs is not None else UdfRegistry()

    # -- public API --------------------------------------------------------------------

    def bind_sql(self, sql: str) -> BoundQuery:
        statement = parse(sql)
        if not isinstance(statement, SelectStatement):
            raise BindError(
                f"{type(statement).__name__} is DDL; only SELECT statements bind to a query"
            )
        return self.bind(statement, sql=sql)

    def bind(self, statement: SelectStatement, sql: str = "") -> BoundQuery:
        tables = self._bind_tables(statement)
        combined_schema = self._combined_schema(tables)

        outputs = self._bind_outputs(statement, tables, combined_schema)
        where = (
            self._bind_expression(statement.where, combined_schema)
            if statement.where is not None
            else None
        )

        statistics = self._combined_statistics(tables)
        udf_selectivities = {
            udf.name: udf.selectivity for udf in self.udfs if udf.is_client_site
        }
        predicates = [
            PredicateInfo.analyze(conjunct, statistics, udf_selectivities)
            for conjunct in conjuncts(where)
        ]

        client_calls = self._collect_client_udf_calls(outputs, predicates)

        order_by: List[Tuple[Expression, bool]] = []
        for item in statement.order_by:
            order_by.append((self._bind_expression(item.expression, combined_schema), item.descending))

        return BoundQuery(
            sql=sql or str(statement),
            tables=tables,
            outputs=outputs,
            predicates=predicates,
            client_udf_calls=client_calls,
            combined_schema=combined_schema,
            distinct=statement.distinct,
            order_by=order_by,
            limit=statement.limit,
            offset=statement.offset,
        )

    # -- tables -------------------------------------------------------------------------

    def _bind_tables(self, statement: SelectStatement) -> List[BoundTable]:
        if not statement.tables:
            raise BindError("the FROM clause is empty")
        tables: List[BoundTable] = []
        seen_aliases: Set[str] = set()
        for reference in statement.tables:
            if not self.catalog.has_table(reference.name):
                raise BindError(
                    f"table {reference.name!r} does not exist; known tables: "
                    f"{self.catalog.table_names()}"
                )
            table = self.catalog.table(reference.name)
            alias = reference.binding_name
            if alias.lower() in seen_aliases:
                raise BindError(f"duplicate table alias {alias!r}")
            seen_aliases.add(alias.lower())
            bare = Schema(column.with_table(None) for column in table.schema.columns)
            tables.append(BoundTable(table=table, alias=alias, schema=bare.qualify(alias)))
        return tables

    @staticmethod
    def _combined_schema(tables: List[BoundTable]) -> Schema:
        combined = tables[0].schema
        for bound in tables[1:]:
            combined = combined.concat(bound.schema)
        return combined

    @staticmethod
    def _combined_statistics(tables: List[BoundTable]) -> TableStatistics:
        statistics = TableStatistics(row_count=1)
        total_rows = 1
        average_row_size = 0.0
        for bound in tables:
            table_stats = bound.table.statistics
            total_rows *= max(1, table_stats.row_count)
            average_row_size += table_stats.average_row_size
            for name, column in table_stats.columns.items():
                statistics.columns.setdefault(name, column)
        statistics.row_count = total_rows
        statistics.average_row_size = average_row_size
        return statistics

    # -- outputs -------------------------------------------------------------------------

    def _bind_outputs(
        self,
        statement: SelectStatement,
        tables: List[BoundTable],
        combined_schema: Schema,
    ) -> List[OutputColumn]:
        outputs: List[OutputColumn] = []
        for item in statement.items:
            if isinstance(item.expression, AstStar):
                outputs.extend(self._expand_star(item.expression, tables))
                continue
            expression = self._bind_expression(item.expression, combined_schema)
            name = item.alias or self._default_output_name(item.expression, len(outputs))
            outputs.append(
                OutputColumn(name=name, expression=expression, dtype=self._infer_type(expression, combined_schema))
            )
        if not outputs:
            raise BindError("the SELECT list is empty")
        return outputs

    def _expand_star(self, star: AstStar, tables: List[BoundTable]) -> List[OutputColumn]:
        selected = tables
        if star.table is not None:
            selected = [t for t in tables if t.alias.lower() == star.table.lower()]
            if not selected:
                raise BindError(f"unknown table alias {star.table!r} in {star}")
        outputs = []
        for bound in selected:
            for column in bound.schema.columns:
                outputs.append(
                    OutputColumn(
                        name=column.name,
                        expression=ColumnRef(column.qualified_name),
                        dtype=column.dtype,
                    )
                )
        return outputs

    @staticmethod
    def _default_output_name(expression: AstExpression, index: int) -> str:
        if isinstance(expression, AstColumn):
            return expression.name
        if isinstance(expression, AstFunctionCall):
            return expression.name
        return f"column_{index + 1}"

    def _infer_type(self, expression: Expression, schema: Schema) -> DataType:
        if isinstance(expression, ColumnRef):
            return schema.column(expression.name).dtype
        if isinstance(expression, FunctionCall):
            udf = self.udfs.maybe_get(expression.name)
            if udf is not None:
                return udf.result_dtype
            return FLOAT
        if isinstance(expression, Literal):
            value = expression.value
            if isinstance(value, bool):
                return BOOLEAN
            if isinstance(value, int):
                return INTEGER
            if isinstance(value, str):
                return STRING
            return FLOAT
        if isinstance(expression, Comparison) or (
            isinstance(expression, BooleanOp)
        ):
            return BOOLEAN
        return FLOAT

    # -- expressions -----------------------------------------------------------------------

    def _bind_expression(self, node: AstExpression, schema: Schema) -> Expression:
        if isinstance(node, AstLiteral):
            return Literal(node.value)
        if isinstance(node, AstColumn):
            name = node.qualified_name
            if not schema.has_column(name):
                raise BindError(
                    f"unknown column {name!r}; available columns: {schema.qualified_names()}"
                )
            # Normalise to the fully qualified spelling for stable downstream lookups.
            column = schema.column(name)
            return ColumnRef(column.qualified_name)
        if isinstance(node, AstFunctionCall):
            if not self.udfs.has(node.name):
                raise BindError(
                    f"unknown function {node.name!r}; registered UDFs: {self.udfs.names()}"
                )
            arguments = [self._bind_expression(argument, schema) for argument in node.arguments]
            udf = self.udfs.get(node.name)
            return FunctionCall(udf.name, arguments)
        if isinstance(node, AstUnaryOp):
            if node.operator.upper() == "NOT":
                return BooleanOp("NOT", [self._bind_expression(node.operand, schema)])
            if node.operator == "-":
                return Arithmetic("-", Literal(0), self._bind_expression(node.operand, schema))
            raise BindError(f"unsupported unary operator {node.operator!r}")
        if isinstance(node, AstBinaryOp):
            operator = node.operator.upper()
            left = self._bind_expression(node.left, schema)
            right = self._bind_expression(node.right, schema)
            if operator in _BOOLEAN_OPERATORS:
                return BooleanOp(operator, [left, right])
            if node.operator in _COMPARISON_OPERATORS:
                return Comparison(node.operator, left, right)
            if node.operator in _ARITHMETIC_OPERATORS:
                return Arithmetic(node.operator, left, right)
            raise BindError(f"unsupported operator {node.operator!r}")
        if isinstance(node, AstStar):
            raise BindError("'*' is only allowed directly in the SELECT list")
        raise BindError(f"cannot bind AST node {type(node).__name__}")

    # -- client-site UDF discovery -------------------------------------------------------------

    def _collect_client_udf_calls(
        self, outputs: List[OutputColumn], predicates: List[PredicateInfo]
    ) -> List[ClientUdfCall]:
        calls: Dict[FunctionCall, ClientUdfCall] = {}

        def record(call: FunctionCall, in_predicate: bool, in_output: bool) -> None:
            udf = self.udfs.maybe_get(call.name)
            if udf is None or not udf.is_client_site:
                return
            existing = calls.get(call)
            if existing is None:
                argument_columns = []
                for argument in call.arguments:
                    if not isinstance(argument, ColumnRef):
                        raise BindError(
                            f"client-site UDF {call.name!r} arguments must be plain "
                            f"column references, got {argument}"
                        )
                    argument_columns.append(argument.name)
                existing = ClientUdfCall(
                    udf=udf,
                    call=call,
                    argument_columns=tuple(argument_columns),
                )
                calls[call] = existing
            existing.used_in_predicate = existing.used_in_predicate or in_predicate
            existing.used_in_output = existing.used_in_output or in_output

        for output in outputs:
            for call in output.expression.function_calls():
                record(call, in_predicate=False, in_output=True)
        for predicate in predicates:
            for call in predicate.expression.function_calls():
                record(call, in_predicate=True, in_output=False)
        return list(calls.values())
