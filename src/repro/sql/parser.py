"""Recursive-descent parser for the supported SQL subset.

Grammar (informally)::

    select    := SELECT [DISTINCT] items FROM tables [WHERE or_expr]
                 [ORDER BY order_items] [LIMIT number [OFFSET number]]
    items     := item (',' item)*
    item      := '*' | expr [AS identifier | identifier]
    tables    := table (',' table)*
    table     := identifier [AS identifier | identifier]
    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | comparison
    comparison:= additive [('=' | '<>' | '!=' | '<' | '<=' | '>' | '>=') additive]
    additive  := multiplicative (('+' | '-') multiplicative)*
    multiplicative := primary (('*' | '/') primary)*
    primary   := number | string | TRUE | FALSE | NULL | '(' or_expr ')'
               | identifier '(' [or_expr (',' or_expr)*] ')'      (function call)
               | identifier ['.' (identifier | '*')]              (column / star)
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.errors import ParseError
from repro.sql.ast import (
    AstBinaryOp,
    AstColumn,
    AstExpression,
    AstFunctionCall,
    AstLiteral,
    AstStar,
    AstUnaryOp,
    CreateIndexStatement,
    DropIndexStatement,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableReference,
)

#: Any parsed statement.
Statement = Union[SelectStatement, CreateIndexStatement, DropIndexStatement]
from repro.sql.lexer import Token, TokenType, tokenize

_COMPARISON_OPERATORS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class Parser:
    """A recursive-descent parser over the lexer's token stream."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens: List[Token] = tokenize(text)
        self.index = 0

    # -- token helpers --------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.END:
            self.index += 1
        return token

    def expect(self, token_type: TokenType, value: Optional[str] = None) -> Token:
        token = self.current
        if token.type is not token_type or (value is not None and token.value != value):
            expected = value or token_type.value
            raise ParseError(
                f"expected {expected!r} but found {token.value or 'end of input'!r} "
                f"at offset {token.position}"
            )
        return self.advance()

    def accept_keyword(self, keyword: str) -> bool:
        if self.current.matches_keyword(keyword):
            self.advance()
            return True
        return False

    def expect_keyword(self, keyword: str) -> None:
        if not self.accept_keyword(keyword):
            raise ParseError(
                f"expected keyword {keyword!r} but found {self.current.value or 'end of input'!r} "
                f"at offset {self.current.position}"
            )

    # -- entry point -----------------------------------------------------------------

    def parse(self) -> Statement:
        # CREATE / DROP / INDEX / ON / USING are deliberately *not* lexer
        # keywords (they stay usable as identifiers in queries), so index DDL
        # dispatches on the leading identifier instead.
        if self._at_word("CREATE"):
            statement: Statement = self._create_index()
        elif self._at_word("DROP"):
            statement = self._drop_index()
        else:
            statement = self._select()
        if self.current.type is not TokenType.END:
            raise ParseError(
                f"unexpected trailing input {self.current.value!r} at offset {self.current.position}"
            )
        return statement

    # -- index DDL ----------------------------------------------------------------------

    def _at_word(self, word: str) -> bool:
        token = self.current
        return token.type is TokenType.IDENTIFIER and token.value.upper() == word

    def _expect_word(self, word: str) -> str:
        if not self._at_word(word):
            raise ParseError(
                f"expected {word!r} but found {self.current.value or 'end of input'!r} "
                f"at offset {self.current.position}"
            )
        return self.advance().value

    def _create_index(self) -> CreateIndexStatement:
        self._expect_word("CREATE")
        self._expect_word("INDEX")
        name = self.expect(TokenType.IDENTIFIER).value
        self._expect_word("ON")
        table = self.expect(TokenType.IDENTIFIER).value
        self.expect(TokenType.LPAREN)
        column = self.expect(TokenType.IDENTIFIER).value
        self.expect(TokenType.RPAREN)
        kind = "btree"
        if self._at_word("USING"):
            self.advance()
            kind = self.expect(TokenType.IDENTIFIER).value.lower()
            if kind not in ("btree", "hash"):
                raise ParseError(f"unknown index kind {kind!r} (expected BTREE or HASH)")
        return CreateIndexStatement(name=name, table=table, column=column, kind=kind)

    def _drop_index(self) -> DropIndexStatement:
        self._expect_word("DROP")
        self._expect_word("INDEX")
        name = self.expect(TokenType.IDENTIFIER).value
        return DropIndexStatement(name=name)

    # -- productions -------------------------------------------------------------------

    def _select(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        statement = SelectStatement()
        statement.distinct = self.accept_keyword("DISTINCT")
        statement.items = self._select_items()
        self.expect_keyword("FROM")
        statement.tables = self._table_references()
        if self.accept_keyword("WHERE"):
            statement.where = self._or_expression()
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            statement.order_by = self._order_items()
        if self.accept_keyword("LIMIT"):
            statement.limit = int(self.expect(TokenType.NUMBER).value)
            if self.accept_keyword("OFFSET"):
                statement.offset = int(self.expect(TokenType.NUMBER).value)
        return statement

    def _select_items(self) -> List[SelectItem]:
        items = [self._select_item()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        if self.current.type is TokenType.STAR:
            self.advance()
            return SelectItem(AstStar())
        expression = self._or_expression()
        alias: Optional[str] = None
        if self.accept_keyword("AS"):
            alias = self.expect(TokenType.IDENTIFIER).value
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.advance().value
        return SelectItem(expression, alias)

    def _table_references(self) -> List[TableReference]:
        tables = [self._table_reference()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            tables.append(self._table_reference())
        return tables

    def _table_reference(self) -> TableReference:
        name = self.expect(TokenType.IDENTIFIER).value
        alias: Optional[str] = None
        if self.accept_keyword("AS"):
            alias = self.expect(TokenType.IDENTIFIER).value
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.advance().value
        return TableReference(name, alias)

    def _order_items(self) -> List[OrderItem]:
        items = [self._order_item()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            items.append(self._order_item())
        return items

    def _order_item(self) -> OrderItem:
        expression = self._or_expression()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return OrderItem(expression, descending)

    # -- expressions ----------------------------------------------------------------------

    def _or_expression(self) -> AstExpression:
        left = self._and_expression()
        while self.current.matches_keyword("OR"):
            self.advance()
            right = self._and_expression()
            left = AstBinaryOp("OR", left, right)
        return left

    def _and_expression(self) -> AstExpression:
        left = self._not_expression()
        while self.current.matches_keyword("AND"):
            self.advance()
            right = self._not_expression()
            left = AstBinaryOp("AND", left, right)
        return left

    def _not_expression(self) -> AstExpression:
        if self.current.matches_keyword("NOT"):
            self.advance()
            return AstUnaryOp("NOT", self._not_expression())
        return self._comparison()

    def _comparison(self) -> AstExpression:
        left = self._additive()
        if self.current.type is TokenType.OPERATOR and self.current.value in _COMPARISON_OPERATORS:
            operator = self.advance().value
            right = self._additive()
            return AstBinaryOp(operator, left, right)
        return left

    def _additive(self) -> AstExpression:
        left = self._multiplicative()
        while self.current.type is TokenType.OPERATOR and self.current.value in ("+", "-"):
            operator = self.advance().value
            right = self._multiplicative()
            left = AstBinaryOp(operator, left, right)
        return left

    def _multiplicative(self) -> AstExpression:
        left = self._primary()
        while True:
            if self.current.type is TokenType.STAR:
                operator = "*"
                self.advance()
            elif self.current.type is TokenType.OPERATOR and self.current.value == "/":
                operator = "/"
                self.advance()
            else:
                break
            right = self._primary()
            left = AstBinaryOp(operator, left, right)
        return left

    def _primary(self) -> AstExpression:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return AstLiteral(value)
        if token.type is TokenType.STRING:
            self.advance()
            return AstLiteral(token.value)
        if token.matches_keyword("TRUE"):
            self.advance()
            return AstLiteral(True)
        if token.matches_keyword("FALSE"):
            self.advance()
            return AstLiteral(False)
        if token.matches_keyword("NULL"):
            self.advance()
            return AstLiteral(None)
        if token.type is TokenType.LPAREN:
            self.advance()
            expression = self._or_expression()
            self.expect(TokenType.RPAREN)
            return expression
        if token.type is TokenType.IDENTIFIER:
            return self._identifier_expression()
        raise ParseError(
            f"unexpected token {token.value or 'end of input'!r} at offset {token.position}"
        )

    def _identifier_expression(self) -> AstExpression:
        name = self.expect(TokenType.IDENTIFIER).value
        if self.current.type is TokenType.LPAREN:
            self.advance()
            arguments: List[AstExpression] = []
            if self.current.type is not TokenType.RPAREN:
                arguments.append(self._or_expression())
                while self.current.type is TokenType.COMMA:
                    self.advance()
                    arguments.append(self._or_expression())
            self.expect(TokenType.RPAREN)
            return AstFunctionCall(name, tuple(arguments))
        if self.current.type is TokenType.DOT:
            self.advance()
            if self.current.type is TokenType.STAR:
                self.advance()
                return AstStar(table=name)
            column = self.expect(TokenType.IDENTIFIER).value
            return AstColumn(column, table=name)
        return AstColumn(name)


def parse(text: str) -> Statement:
    """Parse ``text`` into a statement (SELECT, CREATE INDEX, or DROP INDEX)."""
    return Parser(text).parse()
