"""Mid-query re-optimization: re-entering the System-R enumerator mid-run.

Mid-query *strategy switching* (PR 3) can hand a UDF's unprocessed tail to a
different shipping strategy, but it stays locked into the committed plan
*shape*: the order in which UDFs are applied, and which predicates run where.
When the declared selectivities are wrong, the shape itself is often the
expensive mistake — an unselective-but-cheap UDF applied last should have run
first, shrinking everything downstream.

The :class:`ReOptimizer` closes that gap.  At the segment boundaries of a
:class:`~repro.core.execution.adaptive.PlanMigrationOperator` it receives a
:class:`MigrationObservation` — observed per-predicate selectivities (keyed
by *canonical predicate identity*, so a reordered plan's observations still
match), measured per-UDF cost, effective link bandwidths, and the exact byte
shape of the unprocessed tail.  It snapshots those into a calibrated
statistics view (:class:`RuntimeStatisticsView`, falling back to the
database's :class:`~repro.adaptive.store.StatisticsStore` priors and then the
declarations), re-enters the
:class:`~repro.core.optimizer.enumerator.SystemREnumerator` over the
*remaining* input via
:meth:`~repro.core.optimizer.enumerator.SystemREnumerator.best_plan_from`
(the executed join tree is the partial-progress seed), and prices the
resulting candidate shapes — alongside every small-k permutation — with
:func:`~repro.core.optimizer.cost.remaining_plan_cost`, the plan-shape
analogue of the per-strategy re-costing surface.

Migration is guarded by the same hysteresis family strategy switching uses —
evidence floor (waived when every predicate has a measured store prior),
relative margin, cooldown — plus a *re-plan budget* (``max_replans``), so a
noisy boundary cannot thrash the executor through plan shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from itertools import permutations, product
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.adaptive.store import StatisticsStore, canonical_predicate_key
from repro.core.optimizer.cost import (
    CostEstimator,
    CostSettings,
    RemainingStage,
    remaining_plan_cost,
)
from repro.core.strategies import ExecutionStrategy
from repro.network.topology import NetworkConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sql.logical import BoundQuery


@dataclass(frozen=True)
class ReOptimizationPolicy:
    """Declarative knobs of mid-query re-optimization.

    The segmentation fields mirror :class:`~repro.adaptive.switcher.SwitchPolicy`
    (the migration operator runs the input in the same geometrically growing
    segments); the hysteresis fields guard *plan-shape* migration, whose
    ``max_replans`` budget is deliberately tighter than the strategy-switch
    budget — a shape migration rebuilds the whole remaining pipeline.
    """

    initial_segment_rows: int = 24
    segment_growth: float = 2.0
    max_segment_rows: int = 512
    min_rows_before_replan: int = 16
    hysteresis: float = 0.25
    cooldown_segments: int = 1
    #: The re-plan budget: at most this many plan-shape migrations per query.
    max_replans: int = 2
    #: After this many *consecutive* fully-priced boundaries that confirmed
    #: the incumbent shape, the controller settles: further boundaries would
    #: be pure overhead (extra messages, pipeline fills), so the executor
    #: drains the remaining input in one segment.  0 disables settling.
    confirmation_boundaries: int = 2
    candidate_strategies: Tuple[ExecutionStrategy, ...] = (
        ExecutionStrategy.SEMI_JOIN,
        ExecutionStrategy.CLIENT_SITE_JOIN,
    )

    def __post_init__(self) -> None:
        if self.initial_segment_rows < 1:
            raise ValueError("initial_segment_rows must be at least 1")
        if self.segment_growth < 1.0:
            raise ValueError("segment_growth must be at least 1")
        if self.max_segment_rows < self.initial_segment_rows:
            raise ValueError("max_segment_rows must be >= initial_segment_rows")
        if self.min_rows_before_replan < 0:
            raise ValueError("min_rows_before_replan must be non-negative")
        if self.hysteresis < 0.0:
            raise ValueError("hysteresis must be non-negative")
        if self.cooldown_segments < 0:
            raise ValueError("cooldown_segments must be non-negative")
        if self.max_replans < 0:
            raise ValueError("max_replans must be non-negative")
        if self.confirmation_boundaries < 0:
            raise ValueError("confirmation_boundaries must be non-negative")
        if not self.candidate_strategies:
            raise ValueError("candidate_strategies must not be empty")

    def next_segment_rows(self, segment_index: int) -> int:
        """Rows the ``segment_index``-th segment (0-based) should process."""
        if self.segment_growth == 1.0:
            return max(1, self.initial_segment_rows)
        limit = math.log(
            max(1.0, self.max_segment_rows / self.initial_segment_rows),
            self.segment_growth,
        )
        exponent = min(float(segment_index), limit + 1.0)
        rows = self.initial_segment_rows * self.segment_growth ** exponent
        return max(1, min(self.max_segment_rows, int(rows)))


@dataclass(frozen=True)
class PlanShape:
    """The migratable part of a committed plan: UDF order and strategies."""

    udf_order: Tuple[str, ...]
    udf_strategies: Tuple[Tuple[str, ExecutionStrategy], ...]

    @classmethod
    def of(
        cls, order: Sequence[str], strategies: Mapping[str, ExecutionStrategy]
    ) -> "PlanShape":
        lowered = {name.lower(): strategy for name, strategy in strategies.items()}
        order = tuple(name.lower() for name in order)
        return cls(
            udf_order=order,
            udf_strategies=tuple((name, lowered[name]) for name in order),
        )

    def strategy_of(self, name: str) -> ExecutionStrategy:
        key = name.lower()
        for candidate, strategy in self.udf_strategies:
            if candidate == key:
                return strategy
        raise KeyError(name)

    def describe(self) -> str:
        return " -> ".join(
            f"{name}[{strategy.value}]" for name, strategy in self.udf_strategies
        )


@dataclass(frozen=True)
class PredicateSpec:
    """One UDF-referencing predicate, identified independently of plan shape."""

    #: Canonical identity key (:func:`~repro.adaptive.store.canonical_predicate_key`).
    key: str
    #: Lower-cased names of the UDFs whose results the predicate references.
    udf_names: FrozenSet[str]
    declared_selectivity: float = 1.0


def assign_predicates_to_stages(
    order: Sequence[str], predicates: Sequence[object]
) -> List[List[int]]:
    """Indexes of ``predicates`` assigned per stage of ``order``.

    Each predicate (anything with a lower-cased ``udf_names`` set) goes to
    the *earliest* stage at which every UDF it references has been applied.
    The migration executor (building pipelines), the cost model (pricing
    shapes), and the observer attribution all share this one rule — result
    equivalence across migration paths depends on them agreeing.
    """
    applied: set = set()
    assigned: set = set()
    result: List[List[int]] = []
    for name in order:
        applied.add(name)
        stage: List[int] = []
        for index, predicate in enumerate(predicates):
            if index in assigned or not predicate.udf_names <= applied:
                continue
            assigned.add(index)
            stage.append(index)
        result.append(stage)
    return result


@dataclass(frozen=True)
class MigrationObservation:
    """What the migration operator observed, handed over at a segment boundary.

    ``predicate_counts`` maps canonical predicate keys to cumulative
    ``(rows_surviving, rows_processed)`` pairs; the per-UDF mappings are
    keyed by lower-cased UDF name and describe the *remaining* tail
    (per-row argument bytes, suffix distinct fraction) and the measured
    per-call cost so far.
    """

    rows_processed: int
    remaining_rows: int
    remaining_record_bytes: float
    predicate_counts: Mapping[str, Tuple[int, int]]
    stage_argument_bytes: Mapping[str, float]
    stage_result_bytes: Mapping[str, float]
    stage_distinct_fraction: Mapping[str, float]
    stage_seconds_per_call: Mapping[str, float]
    downlink_bandwidth: float
    uplink_bandwidth: float
    latency: float = 0.0
    batch_size: float = 1.0


@dataclass(frozen=True)
class ReplanDecision:
    """One segment-boundary verdict of the re-optimizer."""

    shape: PlanShape
    next_shape: PlanShape
    remaining_rows: int
    costs: Dict[PlanShape, float]
    reason: str
    observed_selectivities: Dict[str, float] = field(default_factory=dict)

    @property
    def migrated(self) -> bool:
        return self.next_shape != self.shape


class ReOptimizer:
    """Per-query controller deciding whether the remaining plan shape changes.

    Constructed by :meth:`~repro.server.engine.Database.execute` (or tests)
    with the planning inputs — the bound query, the configured network, the
    cost settings, and the database's statistics store — and *bound* by the
    :class:`~repro.core.execution.adaptive.PlanMigrationOperator` to the
    concrete stages once the plan is built.  ``query=None`` disables the
    enumerator re-entry (operator-level harnesses without SQL); candidate
    shapes then come from the bounded permutation search alone.
    """

    #: Permutation search is exhaustive only up to this many stages; beyond
    #: it, candidates come from the enumerator re-entry (and strategy
    #: reassignments of the incumbent order).
    MAX_PERMUTATION_STAGES = 3

    def __init__(
        self,
        policy: Optional[ReOptimizationPolicy] = None,
        query: Optional["BoundQuery"] = None,
        network: Optional[NetworkConfig] = None,
        settings: Optional[CostSettings] = None,
        statistics: Optional[StatisticsStore] = None,
        table_order: Optional[Sequence[str]] = None,
    ) -> None:
        self.policy = policy if policy is not None else ReOptimizationPolicy()
        self.query = query
        self.network = network
        self.settings = settings if settings is not None else CostSettings()
        self.statistics = statistics
        self.table_order = tuple(table_order) if table_order else None

        self._shape: Optional[PlanShape] = None
        self._stages: Tuple[str, ...] = ()
        self._predicates: Tuple[PredicateSpec, ...] = ()
        self._declared: Dict[str, float] = {}
        self._cooldown = 0
        #: Counters surfaced on :class:`~repro.server.metrics.ExecutionMetrics`.
        self.replan_count = 0
        self.attempt_count = 0
        self.enumerations = 0
        self.decisions: List[ReplanDecision] = []

    # -- binding (called by the migration operator) -------------------------------------

    def bind(
        self,
        initial_shape: PlanShape,
        predicates: Sequence[PredicateSpec],
    ) -> None:
        """Anchor the controller to the built plan's stages and predicates.

        Binding starts a fresh query: all per-query runtime state (decisions,
        counters, cooldown) is reset, so a controller attached to a reusable
        :class:`~repro.core.strategies.StrategyConfig` does not carry a spent
        budget or a settled verdict into the next query.
        """
        self._shape = initial_shape
        self._stages = initial_shape.udf_order
        self._predicates = tuple(predicates)
        self._declared = {
            predicate.key: predicate.declared_selectivity
            for predicate in predicates
            if predicate.key
        }
        self._cooldown = 0
        self.replan_count = 0
        self.attempt_count = 0
        self.enumerations = 0
        self.decisions = []

    @property
    def current_shape(self) -> PlanShape:
        if self._shape is None:
            raise RuntimeError("ReOptimizer.bind() must run before execution")
        return self._shape

    @property
    def settled(self) -> bool:
        """Whether further segment boundaries can no longer change the shape.

        True once the re-plan budget is spent, or once
        ``confirmation_boundaries`` consecutive fully-priced boundaries all
        confirmed the incumbent — the executor then drains the remaining
        input in one segment instead of paying boundary overhead for
        decisions that cannot (or will not) migrate.
        """
        if self.replan_count >= self.policy.max_replans:
            return True
        window = self.policy.confirmation_boundaries
        if window <= 0 or len(self.decisions) < window:
            return False
        recent = self.decisions[-window:]
        # Only fully-priced keeps count as confirmation: an evidence-floor or
        # cooldown keep never compared the candidate shapes at all.
        return all((not decision.migrated) and decision.costs for decision in recent)

    @property
    def shapes_used(self) -> Tuple[PlanShape, ...]:
        """The distinct shapes the query ran under, in first-use order."""
        used: List[PlanShape] = []
        for decision in self.decisions:
            if decision.shape not in used:
                used.append(decision.shape)
            if decision.next_shape not in used:
                used.append(decision.next_shape)
        if not used and self._shape is not None:
            used.append(self._shape)
        return tuple(used)

    # -- priors ---------------------------------------------------------------------------

    def prior_selectivity(self, udf_name: str, predicate_key: str) -> Optional[float]:
        """The store's measured prior for this predicate identity, if any."""
        if self.statistics is None or not predicate_key:
            return None
        return self.statistics.selectivity_prior(udf_name, predicate_key)

    def initial_selectivity(self, udf_name: str, predicate_key: str, declared: float) -> float:
        """The estimate migration starts from: store prior, else declared."""
        prior = self.prior_selectivity(udf_name, predicate_key)
        return prior if prior is not None else declared

    # -- the decision --------------------------------------------------------------------

    def consider(self, observation: MigrationObservation) -> ReplanDecision:
        """Fold one segment boundary in; may migrate :attr:`current_shape`."""
        self.attempt_count += 1
        shape = self.current_shape
        selectivities = self._effective_selectivities(observation)

        def keep(reason: str, costs: Optional[Dict[PlanShape, float]] = None) -> ReplanDecision:
            decision = ReplanDecision(
                shape=shape,
                next_shape=shape,
                remaining_rows=observation.remaining_rows,
                costs=costs if costs is not None else {},
                reason=reason,
                observed_selectivities=selectivities,
            )
            self.decisions.append(decision)
            if self._cooldown > 0:
                self._cooldown -= 1
            return decision

        if observation.remaining_rows <= 0:
            return keep("no rows remaining")
        if self.replan_count >= self.policy.max_replans:
            return keep("re-plan budget exhausted")
        if self._cooldown > 0:
            return keep(f"cooldown: {self._cooldown} segment boundary(ies) left")
        if observation.rows_processed < self.policy.min_rows_before_replan and not (
            self._predicates
            and all(
                self.prior_selectivity(next(iter(p.udf_names), ""), p.key) is not None
                for p in self._predicates
            )
        ):
            # A full set of measured store priors pre-earns the floor.
            return keep(
                f"evidence floor: {observation.rows_processed} < "
                f"{self.policy.min_rows_before_replan} rows observed"
            )

        costs = self._price_shapes(observation, selectivities)
        incumbent = costs.get(shape)
        if incumbent is None or incumbent <= 0:
            return keep("incumbent not re-costable", costs)
        challenger = min(costs, key=lambda candidate: costs[candidate])
        if challenger == shape:
            return keep("incumbent shape still cheapest", costs)
        margin = (incumbent - costs[challenger]) / incumbent
        if margin <= self.policy.hysteresis:
            return keep(
                f"{challenger.describe()} only {margin:.0%} cheaper "
                f"(hysteresis {self.policy.hysteresis:.0%})",
                costs,
            )

        decision = ReplanDecision(
            shape=shape,
            next_shape=challenger,
            remaining_rows=observation.remaining_rows,
            costs=costs,
            reason=(
                f"{challenger.describe()} {margin:.0%} cheaper for the remaining "
                f"{observation.remaining_rows} rows"
            ),
            observed_selectivities=selectivities,
        )
        self.decisions.append(decision)
        self._shape = challenger
        self.replan_count += 1
        self._cooldown = self.policy.cooldown_segments
        return decision

    # -- effective statistics -------------------------------------------------------------

    def _effective_selectivities(
        self, observation: MigrationObservation
    ) -> Dict[str, float]:
        """Per-predicate-identity selectivity: observed, else prior, else declared."""
        effective: Dict[str, float] = {}
        for predicate in self._predicates:
            if not predicate.key:
                continue
            survived, processed = observation.predicate_counts.get(predicate.key, (0, 0))
            if processed >= max(1, self.policy.min_rows_before_replan):
                effective[predicate.key] = survived / processed
                continue
            prior = self.prior_selectivity(
                next(iter(predicate.udf_names), ""), predicate.key
            )
            effective[predicate.key] = (
                prior if prior is not None else predicate.declared_selectivity
            )
        return effective

    def _stage_sequence(
        self,
        shape: PlanShape,
        observation: MigrationObservation,
        selectivities: Mapping[str, float],
    ) -> List[RemainingStage]:
        """The :func:`remaining_plan_cost` stages of ``shape`` over the tail.

        Predicates are assigned per :func:`assign_predicates_to_stages` —
        the same rule the migration operator uses when it builds the segment
        pipeline, so pricing and execution agree on where each filter runs.
        """
        assignment = assign_predicates_to_stages(shape.udf_order, self._predicates)
        stages: List[RemainingStage] = []
        for (name, strategy), indexes in zip(shape.udf_strategies, assignment):
            selectivity = 1.0
            for index in indexes:
                predicate = self._predicates[index]
                selectivity *= max(
                    0.0,
                    selectivities.get(predicate.key, predicate.declared_selectivity),
                )
            stages.append(
                RemainingStage(
                    strategy=strategy,
                    selectivity=selectivity,
                    distinct_fraction=observation.stage_distinct_fraction.get(name, 1.0),
                    udf_seconds_per_call=observation.stage_seconds_per_call.get(name, 0.0),
                    argument_bytes=observation.stage_argument_bytes.get(name, 8.0),
                    result_bytes=observation.stage_result_bytes.get(name, 8.0),
                )
            )
        return stages

    # -- candidate shapes ----------------------------------------------------------------

    def _candidate_shapes(
        self,
        observation: MigrationObservation,
        selectivities: Mapping[str, float],
    ) -> List[PlanShape]:
        shape = self.current_shape
        names = self._stages
        candidates: List[PlanShape] = [shape]

        if len(names) <= self.MAX_PERMUTATION_STAGES:
            for order in permutations(names):
                for assignment in product(
                    self.policy.candidate_strategies, repeat=len(order)
                ):
                    candidates.append(
                        PlanShape.of(order, dict(zip(order, assignment)))
                    )
        else:
            # Too many stages to enumerate orders exhaustively here: keep the
            # incumbent order but revisit every strategy assignment.
            for assignment in product(
                self.policy.candidate_strategies, repeat=len(names)
            ):
                candidates.append(PlanShape.of(names, dict(zip(names, assignment))))

        enumerated = self._enumerated_shape(observation, selectivities)
        if enumerated is not None:
            candidates.append(enumerated)

        unique: List[PlanShape] = []
        for candidate in candidates:
            if candidate not in unique:
                unique.append(candidate)
        return unique

    def _price_shapes(
        self,
        observation: MigrationObservation,
        selectivities: Mapping[str, float],
    ) -> Dict[PlanShape, float]:
        return {
            candidate: remaining_plan_cost(
                self._stage_sequence(candidate, observation, selectivities),
                observation.remaining_rows,
                record_bytes=observation.remaining_record_bytes,
                downlink_bandwidth=observation.downlink_bandwidth,
                uplink_bandwidth=observation.uplink_bandwidth,
                latency=observation.latency,
                settings=self.settings,
                batch_size=observation.batch_size,
            )
            for candidate in self._candidate_shapes(observation, selectivities)
        }

    # -- the enumerator re-entry ----------------------------------------------------------

    def _enumerated_shape(
        self,
        observation: MigrationObservation,
        selectivities: Mapping[str, float],
    ) -> Optional[PlanShape]:
        """Re-enter the System-R enumerator over the remaining input.

        The executed join tree is the partial-progress seed (every table
        operation applied, cardinality and byte shape overridden to the
        observed tail); the DP then explores every remaining UDF order and
        strategy variant with the calibrated estimator.
        """
        if self.query is None or self.network is None:
            return None
        from repro.core.optimizer.enumerator import SystemREnumerator
        from repro.core.optimizer.plans import operations_for_query
        from repro.core.optimizer.properties import PhysicalProperties

        view = RuntimeStatisticsView(
            selectivities=selectivities,
            udf_costs=dict(observation.stage_seconds_per_call),
            distinct_fractions=dict(observation.stage_distinct_fraction),
            store=self.statistics,
        )
        network = replace(
            self.network,
            downlink_bandwidth=observation.downlink_bandwidth
            if observation.downlink_bandwidth > 0
            else self.network.downlink_bandwidth,
            uplink_bandwidth=observation.uplink_bandwidth
            if observation.uplink_bandwidth > 0
            else self.network.uplink_bandwidth,
        )
        settings = self.settings.with_batch_size(max(1.0, observation.batch_size))
        estimator = CostEstimator(
            network,
            self.query,
            settings=settings,
            allow_deferred_return=False,
            statistics=view,
        )
        tables, udfs = operations_for_query(self.query, statistics=view)
        if not udfs:
            return None

        by_alias = {operation.alias.lower(): operation for operation in tables}
        order = [alias.lower() for alias in (self.table_order or by_alias.keys())]
        order = [alias for alias in order if alias in by_alias] or list(by_alias)
        seed = estimator.scan(by_alias[order[0]])
        for alias in order[1:]:
            seed = estimator.join(seed, by_alias[alias])
        # The join tree has executed: its cost is sunk, its output is the
        # observed tail.  Distinct counts are capped at the tail cardinality.
        remaining = float(observation.remaining_rows)
        seed = seed.extended(
            cost=0.0,
            cardinality=remaining,
            steps=(),
            column_distinct={
                name: max(1.0, min(value, remaining))
                for name, value in seed.column_distinct.items()
            },
            properties=PhysicalProperties(),
        )
        enumerator = SystemREnumerator(estimator, tables, udfs)
        self.enumerations += 1
        plan = enumerator.best_plan_from(seed)
        if not plan.udf_order:
            return None
        return PlanShape.of(plan.udf_order, plan.udf_strategies)

    # -- reporting -----------------------------------------------------------------------

    def describe(self) -> str:
        lines = [
            f"re-optimizer: {self.replan_count} migration(s) in "
            f"{self.attempt_count} boundary(ies), {self.enumerations} "
            f"enumerator re-entries"
        ]
        for decision in self.decisions:
            marker = "MIGRATE" if decision.migrated else "keep"
            lines.append(f"  [{marker}] {decision.shape.describe()}: {decision.reason}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ReOptimizer(replans={self.replan_count}, attempts={self.attempt_count}, "
            f"enumerations={self.enumerations})"
        )


class RuntimeStatisticsView:
    """Observed-statistics snapshot speaking the estimator's statistics protocol.

    Wraps what *this* run has measured so far — per-predicate-identity
    selectivities, per-UDF costs and distinct fractions — over the database's
    cross-query :class:`~repro.adaptive.store.StatisticsStore` priors, over
    the declared defaults.  Handed to
    :class:`~repro.core.optimizer.cost.CostEstimator` and
    :func:`~repro.core.optimizer.plans.operations_for_query` when the
    enumerator is re-entered mid-query, so the re-planning pass plans with
    the freshest numbers available for every quantity.
    """

    def __init__(
        self,
        selectivities: Mapping[str, float],
        udf_costs: Mapping[str, float],
        distinct_fractions: Mapping[str, float],
        store: Optional[StatisticsStore] = None,
    ) -> None:
        self._selectivities = {
            key: value for key, value in selectivities.items() if key
        }
        self._udf_costs = {name.lower(): value for name, value in udf_costs.items()}
        self._distinct = {
            name.lower(): value for name, value in distinct_fractions.items()
        }
        self._store = store

    def udf_cost(self, name: str, default: float) -> float:
        value = self._udf_costs.get(name.lower())
        if value is not None and value > 0:
            return value
        if self._store is not None:
            return self._store.udf_cost(name, default)
        return default

    def udf_selectivity(
        self, name: str, default: float, predicate: Optional[str] = None
    ) -> float:
        if predicate is not None:
            observed = self._selectivities.get(canonical_predicate_key(predicate))
            if observed is not None:
                return min(1.0, max(0.0, observed))
        if self._store is not None:
            return self._store.udf_selectivity(name, default, predicate=predicate)
        return default

    def udf_distinct_fraction(self, name: str, default: float) -> float:
        value = self._distinct.get(name.lower())
        if value is not None:
            return min(1.0, max(0.0, value))
        if self._store is not None:
            return self._store.udf_distinct_fraction(name, default)
        return default

    def predicate_selectivity(self, predicate: str, default: float) -> float:
        observed = self._selectivities.get(canonical_predicate_key(predicate))
        if observed is not None:
            return min(1.0, max(0.0, observed))
        if self._store is not None:
            return self._store.predicate_selectivity(predicate, default)
        return default

    # The remaining optimizer statistics protocol: the re-optimizer applies
    # observed bandwidths and batch sizes itself (it has fresher, this-run
    # numbers), so the view passes planning inputs through — store-backed
    # when a store is present.

    def calibrated_network(self, configured: NetworkConfig) -> NetworkConfig:
        if self._store is not None:
            return self._store.calibrated_network(configured)
        return configured

    def calibrated_cost_settings(self, settings: CostSettings) -> CostSettings:
        if self._store is not None:
            return self._store.calibrated_cost_settings(settings)
        return settings

    @property
    def queries_observed(self) -> int:
        return self._store.queries_observed if self._store is not None else 0
