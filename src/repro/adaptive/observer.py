"""Runtime observation: deriving measured statistics from a query run.

The cost model plans with *configured* numbers — link bandwidth/latency from
:class:`~repro.network.topology.NetworkConfig`, per-call cost and predicate
selectivity from the :class:`~repro.client.udf.UdfDefinition` the user
declared.  In a production client-server system those numbers are wrong until
observed.  The :class:`RuntimeObserver` closes the gap: after each query it
reads the accounting the runtime already keeps —
:class:`~repro.network.stats.LinkStats` on both links, the client runtime's
per-UDF invocation/compute counters, and the remote operators' row counters —
and condenses them into a :class:`QueryObservation` the
:class:`~repro.adaptive.store.StatisticsStore` folds into its calibrated
estimates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.network.stats import LinkStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adaptive.controller import BatchSizeController
    from repro.client.runtime import ClientRuntime
    from repro.core.execution.base import RemoteUdfOperator
    from repro.core.execution.context import RemoteExecutionContext


@dataclass(frozen=True)
class LinkObservation:
    """Measured behaviour of one directed link over one query."""

    name: str
    total_bytes: int
    payload_bytes: int
    message_count: int
    data_message_count: int
    rows_transferred: int
    busy_seconds: float
    queueing_seconds: float

    @property
    def effective_bandwidth(self) -> Optional[float]:
        """Observed bytes/second while the link was serialising.

        On a stable link this recovers the configured bandwidth; on a
        drifting link it is the byte-weighted average the query actually saw
        — the number the next query should plan with.
        """
        if self.busy_seconds <= 0:
            return None
        return self.total_bytes / self.busy_seconds

    @property
    def achieved_bandwidth(self) -> Optional[float]:
        """Observed bytes/second *including* sender-side queueing delay.

        On a private link this equals :attr:`effective_bandwidth`; on a
        shared trunk the queueing time is mostly other tenants' traffic, so
        this is the share of the trunk the flow actually achieved — the
        number a contention-aware planner should use.
        """
        occupied = self.busy_seconds + self.queueing_seconds
        if occupied <= 0:
            return None
        return self.total_bytes / occupied

    @property
    def rows_per_message(self) -> float:
        if self.data_message_count <= 0:
            return 0.0
        return self.rows_transferred / self.data_message_count

    @property
    def mean_queueing_seconds(self) -> float:
        """Average sender-side queueing delay per message (congestion signal)."""
        if self.message_count <= 0:
            return 0.0
        return self.queueing_seconds / self.message_count

    @classmethod
    def from_stats(cls, stats: LinkStats) -> "LinkObservation":
        return cls(
            name=stats.name,
            total_bytes=stats.total_bytes,
            payload_bytes=stats.payload_bytes,
            message_count=stats.message_count,
            data_message_count=stats.data_message_count,
            rows_transferred=stats.rows_transferred,
            busy_seconds=stats.busy_seconds,
            queueing_seconds=stats.queueing_seconds,
        )


@dataclass(frozen=True)
class UdfObservation:
    """Measured behaviour of one client-site UDF over one query."""

    name: str
    invocations: int
    compute_seconds: float
    input_rows: int
    output_rows: int
    distinct_arguments: int
    #: Whether the operator applied a predicate before producing its output
    #: (a client-site join with a pushed predicate) — only then does the
    #: output/input ratio measure a predicate selectivity.
    filtered: bool = False
    #: The applied predicate's rewritten (result column) text, when filtered.
    #: Observed selectivities are stored under (UDF, predicate), so different
    #: predicates over the same UDF keep separate estimates.
    predicate: Optional[str] = None

    @property
    def measured_cost_per_call(self) -> Optional[float]:
        """Observed client CPU seconds per invocation (the calibrated cost)."""
        if self.invocations <= 0:
            return None
        return self.compute_seconds / self.invocations

    @property
    def observed_selectivity(self) -> Optional[float]:
        """Fraction of input rows surviving the operator's predicate, if any."""
        if not self.filtered or self.input_rows <= 0:
            return None
        return self.output_rows / self.input_rows

    @property
    def observed_distinct_fraction(self) -> Optional[float]:
        """The paper's D parameter, as actually seen by the operator."""
        if self.input_rows <= 0 or self.distinct_arguments <= 0:
            return None
        return min(1.0, self.distinct_arguments / self.input_rows)


@dataclass(frozen=True)
class PredicateObservation:
    """Observed selectivity of one server-side filter.

    ``equality_column`` is set when the filter was a single column-vs-literal
    equality: its observed selectivity is then direct evidence about the
    column's distinct-value count (selectivity ≈ 1/V(A)), which the store
    feeds back into table-level statistics estimates.
    """

    predicate: str
    input_rows: int
    output_rows: int
    equality_column: Optional[str] = None

    @property
    def observed_selectivity(self) -> Optional[float]:
        if self.input_rows <= 0:
            return None
        return self.output_rows / self.input_rows


@dataclass(frozen=True)
class JoinObservation:
    """Observed selectivity of one server-side equi-join.

    ``columns`` are the join-key column names from both sides.  The observed
    selectivity is the output cardinality relative to the cross product —
    the quantity the optimizer's 1/max(V(A), V(B)) formula estimates.
    """

    columns: Tuple[str, ...]
    left_rows: int
    right_rows: int
    output_rows: int

    @property
    def observed_selectivity(self) -> Optional[float]:
        cross = self.left_rows * self.right_rows
        if cross <= 0:
            return None
        return self.output_rows / cross


@dataclass
class QueryObservation:
    """Everything one query run taught us about the environment."""

    elapsed_seconds: float
    downlink: Optional[LinkObservation] = None
    uplink: Optional[LinkObservation] = None
    udfs: Dict[str, UdfObservation] = field(default_factory=dict)
    predicates: Tuple[PredicateObservation, ...] = ()
    joins: Tuple[JoinObservation, ...] = ()
    rows_returned: int = 0
    converged_batch_size: Optional[int] = None
    batch_size_trace: Tuple[int, ...] = ()
    #: Per-UDF converged batch sizes, when execution used a per-UDF
    #: controller bank (keys lower-cased).
    udf_batch_sizes: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        parts: List[str] = [f"elapsed {self.elapsed_seconds:.3f}s"]
        for link in (self.downlink, self.uplink):
            if link is not None and link.effective_bandwidth is not None:
                parts.append(f"{link.name} ~{link.effective_bandwidth:.0f} B/s")
        for name, udf in sorted(self.udfs.items()):
            cost = udf.measured_cost_per_call
            selectivity = udf.observed_selectivity
            bits = [f"{udf.invocations} calls"]
            if cost is not None:
                bits.append(f"{cost * 1000:.3f} ms/call")
            if selectivity is not None:
                bits.append(f"selectivity {selectivity:.2f}")
            parts.append(f"udf {name}: " + ", ".join(bits))
        if self.converged_batch_size is not None:
            parts.append(f"batch size -> {self.converged_batch_size}")
        return " | ".join(parts)


class RuntimeObserver:
    """Derives a :class:`QueryObservation` from a finished execution.

    The observer is hooked into the :class:`~repro.server.executor.Executor`:
    after each query it is handed the execution context (whose channel carries
    the per-link :class:`LinkStats`), the plan's remote UDF operators (row and
    distinct-argument counters), and the client runtime (per-UDF invocation
    and compute accounting).  When constructed with a
    :class:`~repro.adaptive.store.StatisticsStore` it records every
    observation there, closing the observe → calibrate loop.
    """

    def __init__(self, store: Optional["object"] = None, history: int = 32) -> None:
        #: Destination for observations; anything with ``record(observation)``.
        self.store = store
        #: Recent observations, newest last.  Bounded: the store keeps the
        #: blended aggregates, so a long-lived database does not accumulate
        #: per-query history without limit.
        self.observations: Deque[QueryObservation] = deque(maxlen=max(1, history))

    def observe(
        self,
        context: "RemoteExecutionContext",
        remote_operators: List["RemoteUdfOperator"] = (),
        client: Optional["ClientRuntime"] = None,
        rows_returned: int = 0,
        controller: Optional["BatchSizeController"] = None,
        filter_operators: List[object] = (),
        join_operators: List[object] = (),
    ) -> QueryObservation:
        """Build (and record) the observation for one finished query."""
        client = client if client is not None else context.client
        stats = context.channel_stats

        udfs: Dict[str, UdfObservation] = {}
        for operator in remote_operators:
            name = operator.udf.name
            previous = udfs.get(name)
            input_rows = operator.input_row_count + (previous.input_rows if previous else 0)
            output_rows = operator.output_row_count + (previous.output_rows if previous else 0)
            distinct = operator.distinct_argument_count + (
                previous.distinct_arguments if previous else 0
            )
            filtered = self._operator_filtered(operator) or (
                previous.filtered if previous else False
            )
            predicate = self._operator_predicate(operator) or (
                previous.predicate if previous else None
            )
            udfs[name] = UdfObservation(
                name=name,
                invocations=client.invocations_of(name),
                compute_seconds=client.compute_seconds_of(name),
                input_rows=input_rows,
                output_rows=output_rows,
                distinct_arguments=distinct,
                filtered=filtered,
                predicate=predicate,
            )

        predicates: List[PredicateObservation] = []
        for operator in filter_operators:
            children = getattr(operator, "children", ())
            if not children:
                continue
            input_rows = children[0].rows_produced
            predicates.append(
                PredicateObservation(
                    predicate=str(getattr(operator, "predicate", operator)),
                    input_rows=input_rows,
                    output_rows=operator.rows_produced,
                    equality_column=self._equality_column(
                        getattr(operator, "predicate", None)
                    ),
                )
            )

        joins: List[JoinObservation] = []
        for operator in join_operators:
            children = getattr(operator, "children", ())
            left_keys = getattr(operator, "left_keys", None)
            right_keys = getattr(operator, "right_keys", None)
            if len(children) != 2 or not left_keys or not right_keys:
                continue
            joins.append(
                JoinObservation(
                    columns=tuple(left_keys) + tuple(right_keys),
                    left_rows=children[0].rows_produced,
                    right_rows=children[1].rows_produced,
                    output_rows=operator.rows_produced,
                )
            )

        observation = QueryObservation(
            elapsed_seconds=context.elapsed_seconds,
            downlink=LinkObservation.from_stats(stats.downlink),
            uplink=LinkObservation.from_stats(stats.uplink),
            udfs=udfs,
            predicates=tuple(predicates),
            joins=tuple(joins),
            rows_returned=rows_returned,
            converged_batch_size=(
                controller.converged_batch_size
                if controller is not None and controller.batches_observed > 0
                else None
            ),
            batch_size_trace=controller.size_trace() if controller is not None else (),
            udf_batch_sizes=(
                controller.converged_sizes()
                if controller is not None and hasattr(controller, "converged_sizes")
                else {}
            ),
        )
        self.observations.append(observation)
        if self.store is not None:
            self.store.record(observation)
        return observation

    @staticmethod
    def _equality_column(predicate: object) -> Optional[str]:
        """The column name when ``predicate`` is a column-vs-literal equality."""
        from repro.relational.expressions import ColumnRef, Comparison, Literal

        if not isinstance(predicate, Comparison) or predicate.operator != "=":
            return None
        if predicate.function_calls():
            return None
        left, right = predicate.left, predicate.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            return left.name
        if isinstance(right, ColumnRef) and isinstance(left, Literal):
            return right.name
        return None

    @staticmethod
    def _operator_filtered(operator: "RemoteUdfOperator") -> bool:
        """Whether the operator's output/input ratio reflects a predicate."""
        predicate = getattr(operator, "pushable_predicate", None)
        return predicate is not None

    @staticmethod
    def _operator_predicate(operator: "RemoteUdfOperator") -> Optional[str]:
        """The applied predicate's text — the (UDF, predicate) selectivity key."""
        predicate = getattr(operator, "pushable_predicate", None)
        return str(predicate) if predicate is not None else None
