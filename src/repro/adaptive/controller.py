"""Mid-query adaptive batch sizing.

The batched executor (PR 1) ships ``StrategyConfig.batch_size`` rows per
network message — a *static*, plan-wide knob the optimizer picks from
configured network parameters.  The :class:`BatchSizeController` replaces it
with a closed feedback loop: the execution strategies ask the controller for
the batch size *before forming each batch* and report the observed progress
(rows acknowledged, simulated seconds elapsed) *after each reply*, so the
batch size hill-climbs on measured rows/second while the query runs.

The climber works on a multiplicative ladder (…, b/2, b, 2b, …):

* measurements are aggregated into *windows* of at least
  ``window_batches`` batches and ``window_rows`` rows, so one noisy
  round trip cannot flip a decision;
* each window's throughput updates an exponentially weighted estimate for
  the batch size it ran at; the next size is whichever of {b/2, b, 2b} has
  the best estimate, probing unexplored neighbours in the current climb
  direction first;
* once settled, the controller periodically re-probes a neighbour
  (``reprobe_after`` stable windows, alternating up/down) so an optimum that
  *moved* — a link whose bandwidth drifted mid-query — is rediscovered;
* a throughput *collapse* at the current size (a window under
  ``collapse_fraction`` of its previous estimate) discards all estimates:
  the network has visibly changed, so remembered throughputs are stale.

The controller is deliberately transport-agnostic: it never touches the
simulator.  Strategies feed it observations via :meth:`observe_rows` with
the current simulated clock, and it tracks inter-arrival times itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class BatchDecision:
    """One completed measurement window and the size chosen after it."""

    batch_size: int
    rows: int
    seconds: float
    next_batch_size: int

    @property
    def rows_per_second(self) -> float:
        return self.rows / self.seconds if self.seconds > 0 else 0.0


class BatchSizeController:
    """Hill-climbs the per-message batch size on observed rows/second."""

    def __init__(
        self,
        initial_batch_size: int = 8,
        min_batch_size: int = 1,
        max_batch_size: int = 256,
        window_batches: int = 2,
        window_rows: int = 32,
        smoothing: float = 0.5,
        reprobe_after: int = 6,
        collapse_fraction: float = 0.5,
        collapse_backoff: bool = False,
    ) -> None:
        if min_batch_size < 1:
            raise ValueError("min_batch_size must be at least 1")
        if max_batch_size < min_batch_size:
            raise ValueError("max_batch_size must be >= min_batch_size")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.min_batch_size = min_batch_size
        self.max_batch_size = max_batch_size
        self.window_batches = max(1, window_batches)
        self.window_rows = max(1, window_rows)
        self.smoothing = smoothing
        self.reprobe_after = max(2, reprobe_after)
        self.collapse_fraction = collapse_fraction
        #: On a collapse, immediately step one rung *down* instead of staying
        #: put.  Under multi-tenant cross-traffic a collapse usually means
        #: the flow's trunk share shrank — backing off the window/batch frees
        #: the trunk faster than waiting for fresh neighbour probes.
        self.collapse_backoff = collapse_backoff

        self._size = self._clamp(initial_batch_size)
        self._direction = 1  # +1 probing upward, -1 probing downward
        self._throughput: Dict[int, float] = {}
        self._stable_windows = 0
        self._reprobe_up_next = True

        # Current measurement window.
        self._window_rows_seen = 0
        self._window_seconds = 0.0
        self._window_batch_count = 0
        self._last_observation_at: Optional[float] = None

        #: Completed windows, in order — the convergence trace benchmarks plot.
        self.decisions: List[BatchDecision] = []
        #: Total rows/batches the controller has been told about.
        self.rows_observed = 0
        self.batches_observed = 0
        #: Collapse resets performed (a drifted link invalidated all estimates).
        self.collapse_count = 0

    # -- the two calls strategies make -------------------------------------------------

    def current(self) -> int:
        """The batch size to use for the next batch."""
        return self._size

    def observe_rows(self, rows: int, now: float) -> None:
        """Report that a batch of ``rows`` input rows was acknowledged at ``now``.

        ``now`` is the simulated (or wall) clock; the controller measures the
        time between consecutive observations, which at steady state is the
        pipeline's per-batch service time regardless of how many batches are
        in flight.
        """
        if rows <= 0:
            return
        self.rows_observed += rows
        self.batches_observed += 1
        if self._last_observation_at is None:
            # First reply of an operator: no baseline to measure against.
            self._last_observation_at = now
            return
        elapsed = now - self._last_observation_at
        self._last_observation_at = now
        if elapsed < 0:
            return
        self._window_rows_seen += rows
        self._window_seconds += elapsed
        self._window_batch_count += 1
        if (
            self._window_batch_count >= self.window_batches
            and self._window_rows_seen >= min(self.window_rows, 2 * self._size)
            and self._window_seconds > 0
        ):
            self._decide()

    def begin_operation(self, now: float) -> None:
        """Reset the inter-arrival clock at the start of a remote operation.

        Without this, the idle gap between two remote operators on the same
        connection would be charged to the first batch of the second one.
        """
        self._last_observation_at = now

    # -- decision logic ---------------------------------------------------------------

    def _decide(self) -> None:
        throughput = self._window_rows_seen / self._window_seconds
        previous = self._throughput.get(self._size)
        if (
            previous is not None
            and previous > 0
            and throughput < previous * self.collapse_fraction
        ):
            # The same batch size suddenly runs far slower than it used to:
            # the link drifted, every remembered estimate is stale.
            self._throughput = {self._size: throughput}
            self._stable_windows = 0
            self.collapse_count += 1
            if self.collapse_backoff:
                down = self._clamp(max(1, self._size // 2))
                if down != self._size:
                    self.decisions.append(
                        BatchDecision(
                            batch_size=self._size,
                            rows=self._window_rows_seen,
                            seconds=self._window_seconds,
                            next_batch_size=down,
                        )
                    )
                    self._direction = -1
                    self._size = down
                    self._window_rows_seen = 0
                    self._window_seconds = 0.0
                    self._window_batch_count = 0
                    return
        elif previous is None:
            self._throughput[self._size] = throughput
        else:
            alpha = self.smoothing
            self._throughput[self._size] = (1.0 - alpha) * previous + alpha * throughput

        next_size = self._choose_next()
        self.decisions.append(
            BatchDecision(
                batch_size=self._size,
                rows=self._window_rows_seen,
                seconds=self._window_seconds,
                next_batch_size=next_size,
            )
        )
        if next_size == self._size:
            self._stable_windows += 1
        else:
            self._direction = 1 if next_size > self._size else -1
            self._stable_windows = 0
        self._size = next_size
        self._window_rows_seen = 0
        self._window_seconds = 0.0
        self._window_batch_count = 0

    def _choose_next(self) -> int:
        size = self._size
        up = self._clamp(size * 2)
        down = self._clamp(max(1, size // 2))

        # Probe unexplored territory in the direction we were climbing.
        if self._direction > 0 and up != size and up not in self._throughput:
            return up
        if self._direction < 0 and down != size and down not in self._throughput:
            return down
        # Then any unexplored neighbour at all.
        if up != size and up not in self._throughput:
            return up
        if down != size and down not in self._throughput:
            return down

        # All neighbours known: move to the best estimate.
        candidates = {down, size, up}
        best = max(candidates, key=lambda candidate: self._throughput.get(candidate, 0.0))
        if best != size:
            return best

        # Settled.  Re-probe a neighbour now and then so a drifted optimum is
        # rediscovered; alternate directions to watch both sides.
        if self._stable_windows >= self.reprobe_after:
            self._stable_windows = 0
            probe = up if self._reprobe_up_next and up != size else down
            self._reprobe_up_next = not self._reprobe_up_next
            if probe != size:
                self._throughput.pop(probe, None)
                return probe
        return size

    def _clamp(self, value: int) -> int:
        return max(self.min_batch_size, min(self.max_batch_size, int(value)))

    # -- introspection ----------------------------------------------------------------

    @property
    def converged_batch_size(self) -> int:
        """The best-performing size seen so far (current size before any data)."""
        if not self._throughput:
            return self._size
        return max(self._throughput, key=lambda size: self._throughput[size])

    def throughput_estimate(self, batch_size: int) -> Optional[float]:
        return self._throughput.get(batch_size)

    def size_trace(self) -> Tuple[int, ...]:
        """The sequence of batch sizes the controller moved through."""
        trace: List[int] = []
        for decision in self.decisions:
            if not trace or trace[-1] != decision.batch_size:
                trace.append(decision.batch_size)
        if not trace or trace[-1] != self._size:
            trace.append(self._size)
        return tuple(trace)

    def __repr__(self) -> str:
        return (
            f"BatchSizeController(size={self._size}, windows={len(self.decisions)}, "
            f"rows={self.rows_observed})"
        )


class OverlapWindowController(BatchSizeController):
    """Hill-climbs the overlapped shipping protocol's in-flight batch window.

    Reuses the batch-size climber unchanged — the knob is the number of
    request batches outstanding on the wire
    (:class:`~repro.core.execution.overlap.InFlightWindow` capacity) instead
    of the rows per batch, and the signal is the same observed rows/second
    the strategies already report at every acknowledged batch.  A window too
    small leaves the links idle between round trips (the Figure 6 cliff at
    low concurrency factors); a window past the pipeline's B·T product only
    adds buffering; the climber finds the knee from measurements, and its
    collapse/re-probe machinery re-finds it when the link drifts.

    The ladder is deliberately small (windows are counted in batches, and a
    few batches already cover most pipelines), and the defaults start at a
    modest double-buffered window so the first measurement window is neither
    synchronous nor unbounded.
    """

    def __init__(
        self,
        initial_window: int = 2,
        min_window: int = 1,
        max_window: int = 64,
        **kwargs,
    ) -> None:
        super().__init__(
            initial_batch_size=initial_window,
            min_batch_size=min_window,
            max_batch_size=max_window,
            **kwargs,
        )

    def __repr__(self) -> str:
        return (
            f"OverlapWindowController(window={self.current()}, "
            f"windows={len(self.decisions)}, rows={self.rows_observed})"
        )


class BatchControllerBank:
    """Per-UDF adaptive batch-size controllers with independent ladders.

    A plan-wide :class:`BatchSizeController` blends every remote UDF's
    throughput signal into one ladder: a drift seen by one UDF collapses the
    estimates of all of them, and two UDFs with different per-row byte costs
    fight over a single batch size.  The bank gives each UDF its *own*
    controller, created lazily on first use by ``factory`` (which is where
    per-UDF warm starts from the statistics store come from), so one UDF's
    collapse-reset or climb never disturbs another's ladder.

    The bank mirrors the aggregate introspection surface of a single
    controller (``batches_observed``, ``converged_batch_size``,
    ``size_trace``), so the executor's metrics and the runtime observer work
    unchanged whether a config carries a controller or a bank.
    """

    def __init__(self, factory: Optional[Callable[[str], "BatchSizeController"]] = None) -> None:
        self._factory = factory if factory is not None else (lambda name: BatchSizeController())
        #: Controllers by lower-cased UDF name, in creation order.
        self.controllers: Dict[str, BatchSizeController] = {}

    def controller_for(self, udf_name: Optional[str] = None) -> BatchSizeController:
        """The named UDF's controller, created on first use."""
        key = (udf_name or "").lower()
        controller = self.controllers.get(key)
        if controller is None:
            controller = self._factory(key)
            self.controllers[key] = controller
        return controller

    # -- aggregate introspection (the single-controller protocol) ----------------------

    @property
    def batches_observed(self) -> int:
        return sum(controller.batches_observed for controller in self.controllers.values())

    @property
    def rows_observed(self) -> int:
        return sum(controller.rows_observed for controller in self.controllers.values())

    @property
    def converged_batch_size(self) -> int:
        """The converged size of the controller that saw the most rows.

        For the common single-UDF query this is exactly that UDF's converged
        size; for multi-UDF plans it is the dominant operator's, which is what
        a plan-wide warm start should begin from.
        """
        best: Optional[BatchSizeController] = None
        for controller in self.controllers.values():
            if best is None or controller.rows_observed > best.rows_observed:
                best = controller
        if best is None:
            return BatchSizeController().current()
        return best.converged_batch_size

    def converged_sizes(self) -> Dict[str, int]:
        """Per-UDF converged batch sizes, for UDFs that observed any batch."""
        return {
            name: controller.converged_batch_size
            for name, controller in self.controllers.items()
            if controller.batches_observed > 0
        }

    def size_trace(self) -> Tuple[int, ...]:
        """Concatenated per-UDF traces, in controller creation order."""
        trace: List[int] = []
        for controller in self.controllers.values():
            trace.extend(controller.size_trace())
        return tuple(trace)

    def __repr__(self) -> str:
        return f"BatchControllerBank(udfs={sorted(self.controllers)})"
