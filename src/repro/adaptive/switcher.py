"""Mid-query strategy switching on observed selectivity and bandwidth.

The optimizer commits to naive / semi-join / client-site-join from *declared*
UDF selectivity and *configured* link bandwidths.  The paper's central claim
is that this choice hinges on exactly those two quantities — which the plan
only guesses at until rows actually flow.  The :class:`StrategySwitcher`
closes that gap mid-query: at segment (batch) boundaries the adaptive
executor hands it what the run has *observed* so far — surviving-row fraction,
effective bandwidths, measured per-call cost — plus the exact byte shape of
the unprocessed tail, and the switcher re-costs the remaining rows under each
strategy with :func:`~repro.core.optimizer.cost.remaining_strategy_cost`.
When the committed strategy is no longer the winner *by a margin*, the
unprocessed tail is handed to a different strategy executor.

Oscillation control (the "hysteresis" of the module title) is threefold:

* **evidence floor** — no decision before ``min_rows_before_switch`` input
  rows have been observed, so one tiny probe segment cannot flip the plan;
* **relative margin** — the challenger must beat the incumbent's remaining
  cost by more than ``hysteresis`` (a fraction), so near-ties never switch;
* **cooldown and budget** — after a switch, ``cooldown_segments`` segment
  boundaries must pass before the next one, and at most ``max_switches``
  switches are allowed per operator, so noisy observations around the
  crossover cannot ping-pong the executor.

The switcher is deliberately execution-agnostic: it never touches the
simulator or the operators.  It consumes :class:`SegmentObservation` records
and answers with the strategy the *next* segment should run under, recording
every verdict in :attr:`StrategySwitcher.decisions` for tests and benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.optimizer.cost import CostSettings, remaining_strategy_cost
from repro.core.strategies import ExecutionStrategy


@dataclass(frozen=True)
class SwitchPolicy:
    """Declarative knobs of mid-query strategy switching.

    The policy is plain configuration (hashable, comparable); the mutable
    per-operator state lives in the :class:`StrategySwitcher` the executor
    instantiates from it.

    Parameters
    ----------
    initial_segment_rows:
        Rows of the first (probe) segment.  Small enough that a wrong
        committed strategy only processes a sliver of the input before the
        first re-costing; large enough to observe a meaningful selectivity.
    segment_growth:
        Multiplicative growth of successive segments, bounding the total
        segment-boundary overhead at O(log n) extra round trips.
    max_segment_rows:
        Cap on the segment size (keeps late segments re-costable).
    min_rows_before_switch:
        Evidence floor: no switch before this many input rows were observed.
    hysteresis:
        Relative margin a challenger strategy must win by (0.25 = the
        challenger's remaining-cost estimate must be >25% cheaper).
    cooldown_segments:
        Segment boundaries that must pass after a switch before another
        switch may fire.
    max_switches:
        Hard budget of switches per operator.
    candidate_strategies:
        The strategies considered (defaults to all three).
    """

    initial_segment_rows: int = 24
    segment_growth: float = 2.0
    max_segment_rows: int = 512
    min_rows_before_switch: int = 16
    hysteresis: float = 0.25
    cooldown_segments: int = 1
    max_switches: int = 3
    candidate_strategies: Tuple[ExecutionStrategy, ...] = (
        ExecutionStrategy.NAIVE,
        ExecutionStrategy.SEMI_JOIN,
        ExecutionStrategy.CLIENT_SITE_JOIN,
    )

    def __post_init__(self) -> None:
        if self.initial_segment_rows < 1:
            raise ValueError("initial_segment_rows must be at least 1")
        if self.segment_growth < 1.0:
            raise ValueError("segment_growth must be at least 1")
        if self.max_segment_rows < self.initial_segment_rows:
            raise ValueError("max_segment_rows must be >= initial_segment_rows")
        if self.min_rows_before_switch < 0:
            raise ValueError("min_rows_before_switch must be non-negative")
        if self.hysteresis < 0.0:
            raise ValueError("hysteresis must be non-negative")
        if self.cooldown_segments < 0:
            raise ValueError("cooldown_segments must be non-negative")
        if self.max_switches < 0:
            raise ValueError("max_switches must be non-negative")
        if not self.candidate_strategies:
            raise ValueError("candidate_strategies must not be empty")


@dataclass(frozen=True)
class SegmentObservation:
    """What one finished segment taught us, plus the shape of the tail.

    ``rows_processed`` / ``rows_surviving`` are this segment's input rows and
    its post-predicate output rows — the switcher accumulates them into the
    cumulative observed selectivity.  The ``remaining_*`` fields describe the
    unprocessed tail exactly (the executor has it materialised), and the
    bandwidth/cost fields carry the *observed* values when the segment
    produced enough traffic to measure them, else the configured/declared
    fallbacks.
    """

    rows_processed: int
    rows_surviving: int
    remaining_rows: int
    remaining_record_bytes: float
    remaining_argument_bytes: float
    remaining_distinct_fraction: float
    returned_row_bytes: float
    result_bytes: float
    udf_seconds_per_call: float
    downlink_bandwidth: float
    uplink_bandwidth: float
    latency: float
    batch_size: float = 1.0
    #: The configured in-flight batch window, when the overlapped shipping
    #: protocol is explicitly armed — re-costing then prices the naive
    #: strategy as pipelined rather than synchronous.  ``None`` keeps each
    #: strategy's default assumption.
    overlap_window: Optional[float] = None
    has_predicate: bool = True


@dataclass(frozen=True)
class SwitchDecision:
    """One segment-boundary verdict, for introspection and tests."""

    strategy: ExecutionStrategy
    next_strategy: ExecutionStrategy
    observed_selectivity: Optional[float]
    remaining_rows: int
    costs: Dict[ExecutionStrategy, float]
    reason: str

    @property
    def switched(self) -> bool:
        return self.next_strategy is not self.strategy


class StrategySwitcher:
    """Per-operator controller deciding which strategy runs the next segment.

    One switcher belongs to one remote UDF operator (per-UDF adaptation, not
    plan-wide): its observed selectivity is the cumulative surviving fraction
    of *this* UDF's predicate, and its switch budget is independent of any
    other UDF in the plan.
    """

    def __init__(
        self,
        policy: Optional[SwitchPolicy] = None,
        initial_strategy: ExecutionStrategy = ExecutionStrategy.SEMI_JOIN,
        declared_selectivity: float = 1.0,
        settings: Optional[CostSettings] = None,
        prior_selectivity: Optional[float] = None,
    ) -> None:
        self.policy = policy if policy is not None else SwitchPolicy()
        self.initial_strategy = initial_strategy
        self.declared_selectivity = min(1.0, max(0.0, declared_selectivity))
        self.settings = settings if settings is not None else CostSettings()
        #: A selectivity an earlier run *measured* for this (UDF, predicate)
        #: — a :class:`~repro.adaptive.store.StatisticsStore` prior.  It
        #: replaces the declared value as the initial estimate and counts as
        #: already-earned evidence: a repeat query may switch at the first
        #: segment boundary instead of re-earning the evidence floor.
        self.prior_selectivity = (
            min(1.0, max(0.0, prior_selectivity))
            if prior_selectivity is not None
            else None
        )

        self._strategy = initial_strategy
        self._rows_processed = 0
        self._rows_surviving = 0
        self._cooldown = 0
        self.switch_count = 0
        #: Every segment-boundary verdict, in order.
        self.decisions: List[SwitchDecision] = []

    # -- the two calls the executor makes ----------------------------------------------

    @property
    def current_strategy(self) -> ExecutionStrategy:
        return self._strategy

    def next_segment_rows(self, segment_index: int) -> int:
        """Rows the ``segment_index``-th segment (0-based) should process."""
        policy = self.policy
        if policy.segment_growth == 1.0:
            return max(1, policy.initial_segment_rows)
        # Clamp the exponent at the point the cap is reached, so arbitrarily
        # many segments (huge inputs) never overflow the exponentiation.
        limit = math.log(
            max(1.0, policy.max_segment_rows / policy.initial_segment_rows),
            policy.segment_growth,
        )
        exponent = min(float(segment_index), limit + 1.0)
        rows = policy.initial_segment_rows * policy.segment_growth ** exponent
        return max(1, min(policy.max_segment_rows, int(rows)))

    def observe_segment(self, observation: SegmentObservation) -> ExecutionStrategy:
        """Fold one finished segment in; returns the next segment's strategy."""
        self._rows_processed += max(0, observation.rows_processed)
        self._rows_surviving += max(0, observation.rows_surviving)

        costs = self._remaining_costs(observation)
        decide = self._decide(observation, costs)
        self.decisions.append(decide)
        if decide.switched:
            self._strategy = decide.next_strategy
            self.switch_count += 1
            self._cooldown = self.policy.cooldown_segments
        elif self._cooldown > 0:
            self._cooldown -= 1
        return self._strategy

    # -- observed quantities -----------------------------------------------------------

    def observed_selectivity(self) -> Optional[float]:
        """Cumulative surviving fraction seen so far, or None before any rows."""
        if self._rows_processed <= 0:
            return None
        return self._rows_surviving / self._rows_processed

    def effective_selectivity(self) -> float:
        """The selectivity estimate re-costing uses: observed once measurable.

        Before the evidence floor is reached, a measured prior (from the
        statistics store, satisfying the floor on an earlier run's evidence)
        beats the declared value.
        """
        observed = self.observed_selectivity()
        if observed is None or self._rows_processed < self.policy.min_rows_before_switch:
            if self.prior_selectivity is not None:
                return self.prior_selectivity
            return self.declared_selectivity
        return observed

    @property
    def strategies_used(self) -> Tuple[ExecutionStrategy, ...]:
        """The distinct strategies the operator ran, in first-use order."""
        used: List[ExecutionStrategy] = [self.initial_strategy]
        for decision in self.decisions:
            if decision.switched and decision.next_strategy not in used:
                used.append(decision.next_strategy)
        return tuple(used)

    # -- decision logic ----------------------------------------------------------------

    def _remaining_costs(
        self, observation: SegmentObservation
    ) -> Dict[ExecutionStrategy, float]:
        selectivity = (
            self.effective_selectivity() if observation.has_predicate else 1.0
        )
        return {
            strategy: remaining_strategy_cost(
                strategy,
                observation.remaining_rows,
                record_bytes=observation.remaining_record_bytes,
                argument_bytes=observation.remaining_argument_bytes,
                result_bytes=observation.result_bytes,
                returned_row_bytes=observation.returned_row_bytes,
                selectivity=selectivity,
                distinct_fraction=observation.remaining_distinct_fraction,
                udf_seconds_per_call=observation.udf_seconds_per_call,
                downlink_bandwidth=observation.downlink_bandwidth,
                uplink_bandwidth=observation.uplink_bandwidth,
                latency=observation.latency,
                settings=self.settings,
                batch_size=observation.batch_size,
                overlap_window=observation.overlap_window,
            )
            for strategy in self.policy.candidate_strategies
        }

    def _decide(
        self,
        observation: SegmentObservation,
        costs: Dict[ExecutionStrategy, float],
    ) -> SwitchDecision:
        observed = self.observed_selectivity()

        def keep(reason: str) -> SwitchDecision:
            return SwitchDecision(
                strategy=self._strategy,
                next_strategy=self._strategy,
                observed_selectivity=observed,
                remaining_rows=observation.remaining_rows,
                costs=costs,
                reason=reason,
            )

        if observation.remaining_rows <= 0:
            return keep("no rows remaining")
        if (
            self._rows_processed < self.policy.min_rows_before_switch
            and self.prior_selectivity is None
        ):
            # A store prior pre-earns the floor: an earlier run of the same
            # (UDF, predicate) already observed enough rows.
            return keep(
                f"evidence floor: {self._rows_processed} < "
                f"{self.policy.min_rows_before_switch} rows observed"
            )
        if self.switch_count >= self.policy.max_switches:
            return keep("switch budget exhausted")
        if self._cooldown > 0:
            return keep(f"cooldown: {self._cooldown} segment(s) left")

        incumbent = costs.get(self._strategy)
        if incumbent is None or incumbent <= 0:
            return keep("incumbent not re-costable")
        challenger = min(costs, key=lambda strategy: costs[strategy])
        if challenger is self._strategy:
            return keep("incumbent still cheapest")
        margin = (incumbent - costs[challenger]) / incumbent
        if margin <= self.policy.hysteresis:
            return keep(
                f"{challenger.value} only {margin:.0%} cheaper "
                f"(hysteresis {self.policy.hysteresis:.0%})"
            )
        return SwitchDecision(
            strategy=self._strategy,
            next_strategy=challenger,
            observed_selectivity=observed,
            remaining_rows=observation.remaining_rows,
            costs=costs,
            reason=(
                f"{challenger.value} {margin:.0%} cheaper for the remaining "
                f"{observation.remaining_rows} rows (observed selectivity "
                f"{observed if observed is not None else float('nan'):.2f} vs "
                f"declared {self.declared_selectivity:.2f})"
            ),
        )

    def describe(self) -> str:
        lines = [
            f"strategy switcher: {' -> '.join(s.value for s in self.strategies_used)} "
            f"({self.switch_count} switch(es), {self._rows_processed} rows observed)"
        ]
        for decision in self.decisions:
            marker = "SWITCH" if decision.switched else "keep"
            lines.append(
                f"  [{marker}] {decision.strategy.value}: {decision.reason}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"StrategySwitcher(current={self._strategy.value}, "
            f"switches={self.switch_count}, rows={self._rows_processed})"
        )
