"""The adaptive runtime subsystem: observe → calibrate → adapt.

The paper's cost model assumes the optimizer knows link bandwidth, UDF cost,
and selectivity up front.  In a production client-server system serving
heterogeneous clients those numbers are wrong until observed.  This package
closes the loop:

* :mod:`repro.adaptive.observer` — :class:`RuntimeObserver` derives per-link
  effective bandwidth, per-UDF measured cost, and observed selectivities from
  the accounting the runtime already keeps (:class:`LinkStats`, client
  counters, operator row counts);
* :mod:`repro.adaptive.store` — :class:`StatisticsStore` persists those
  observations across queries (EWMA-blended) and exposes calibrated planning
  inputs, so the optimizer's second query on a network plans with measured —
  not configured — parameters;
* :mod:`repro.adaptive.controller` — :class:`BatchSizeController`
  hill-climbs the per-message batch size on observed rows/second *while a
  query runs*, replacing the static plan-wide ``StrategyConfig.batch_size``.

``Database.execute(..., adaptive=True)`` wires all three together.
"""

from repro.adaptive.controller import BatchDecision, BatchSizeController
from repro.adaptive.observer import (
    LinkObservation,
    PredicateObservation,
    QueryObservation,
    RuntimeObserver,
    UdfObservation,
)
from repro.adaptive.store import StatisticsStore

__all__ = [
    "BatchDecision",
    "BatchSizeController",
    "LinkObservation",
    "PredicateObservation",
    "QueryObservation",
    "RuntimeObserver",
    "UdfObservation",
    "StatisticsStore",
]
