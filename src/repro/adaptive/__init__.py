"""The adaptive runtime subsystem: observe → calibrate → adapt.

The paper's cost model assumes the optimizer knows link bandwidth, UDF cost,
and selectivity up front.  In a production client-server system serving
heterogeneous clients those numbers are wrong until observed.  This package
closes the loop:

* :mod:`repro.adaptive.observer` — :class:`RuntimeObserver` derives per-link
  effective bandwidth, per-UDF measured cost, and observed selectivities from
  the accounting the runtime already keeps (:class:`LinkStats`, client
  counters, operator row counts);
* :mod:`repro.adaptive.store` — :class:`StatisticsStore` persists those
  observations across queries (EWMA-blended) and exposes calibrated planning
  inputs, so the optimizer's second query on a network plans with measured —
  not configured — parameters;
* :mod:`repro.adaptive.controller` — :class:`BatchSizeController`
  hill-climbs the per-message batch size on observed rows/second *while a
  query runs*; a :class:`BatchControllerBank` gives every UDF its own
  controller with an independent ladder and warm start;
* :mod:`repro.adaptive.switcher` — :class:`StrategySwitcher` re-costs the
  *remaining* rows under every strategy at segment boundaries from observed
  selectivity and bandwidth and — with hysteresis — hands the unprocessed
  tail of the input to a different strategy executor mid-query;
* :mod:`repro.adaptive.reoptimizer` — :class:`ReOptimizer` re-enters the
  System-R enumerator over the *remaining* input at segment boundaries with
  everything the run observed, and — under hysteresis plus a re-plan budget
  — migrates execution to a structurally different plan (UDF application
  order and per-UDF strategies), not just a different shipping strategy.

``Database.execute(..., adaptive=True)`` wires the observe → calibrate →
adapt loop together; ``switch_strategies=True`` additionally arms mid-query
strategy switching, and ``reoptimize=True`` arms full mid-query
re-optimization with plan-shape migration.
"""

from repro.adaptive.controller import (
    BatchControllerBank,
    BatchDecision,
    BatchSizeController,
    OverlapWindowController,
)
from repro.adaptive.observer import (
    JoinObservation,
    LinkObservation,
    PredicateObservation,
    QueryObservation,
    RuntimeObserver,
    UdfObservation,
)
from repro.adaptive.reoptimizer import (
    MigrationObservation,
    PlanShape,
    PredicateSpec,
    ReOptimizationPolicy,
    ReOptimizer,
    ReplanDecision,
    RuntimeStatisticsView,
)
from repro.adaptive.store import (
    STORE_VERSION,
    StatisticsStore,
    TenantStatistics,
    canonical_join_key,
    canonical_predicate_key,
)
from repro.adaptive.switcher import (
    SegmentObservation,
    StrategySwitcher,
    SwitchDecision,
    SwitchPolicy,
)

__all__ = [
    "BatchControllerBank",
    "BatchDecision",
    "BatchSizeController",
    "JoinObservation",
    "LinkObservation",
    "MigrationObservation",
    "OverlapWindowController",
    "PlanShape",
    "PredicateObservation",
    "PredicateSpec",
    "QueryObservation",
    "ReOptimizationPolicy",
    "ReOptimizer",
    "ReplanDecision",
    "RuntimeObserver",
    "RuntimeStatisticsView",
    "UdfObservation",
    "SegmentObservation",
    "STORE_VERSION",
    "StatisticsStore",
    "TenantStatistics",
    "StrategySwitcher",
    "SwitchDecision",
    "SwitchPolicy",
    "canonical_join_key",
    "canonical_predicate_key",
]
