"""The feedback store: calibrated statistics that persist across queries.

A :class:`StatisticsStore` lives on the :class:`~repro.server.engine.Database`
and accumulates :class:`~repro.adaptive.observer.QueryObservation` records.
From them it maintains exponentially weighted estimates of

* per-link effective bandwidth (and queueing delay),
* per-UDF measured cost per call, observed predicate selectivity, and
  observed distinct-argument fraction,
* the batch size adaptive executions converged to,

and exposes them in the vocabulary the planning layer speaks: a *calibrated*
:class:`~repro.network.topology.NetworkConfig`, calibrated
:class:`~repro.core.optimizer.cost.CostSettings`, and ``udf_cost`` /
``udf_selectivity`` lookups the cost estimator consults.  The optimizer's
second query on a network therefore plans with measured — not configured —
parameters, in the spirit of statistics-driven plan estimates
(``StatInfo``-style feedback in classical systems).
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING

from repro.adaptive.observer import QueryObservation
from repro.network.topology import NetworkConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.optimizer.cost import CostSettings

#: On-disk format version of :meth:`StatisticsStore.save` snapshots.
STORE_VERSION = 1


def _strip_wrapping_parens(text: str) -> str:
    """``text`` without a redundant paren pair wrapping the whole string.

    ``(A AND B)`` becomes ``A AND B``; ``(A) AND (B)`` is returned unchanged
    (its outer parens do not wrap the whole string).
    """
    stripped = text.strip()
    while stripped.startswith("(") and stripped.endswith(")"):
        depth = 0
        wraps = True
        for index, character in enumerate(stripped):
            if character == "(":
                depth += 1
            elif character == ")":
                depth -= 1
                if depth < 0 or (depth == 0 and index < len(stripped) - 1):
                    wraps = False
                    break
        if not wraps or depth != 0:
            break
        stripped = stripped[1:-1].strip()
    return stripped


def _split_top_level_and(text: str) -> List[str]:
    """Top-level AND conjuncts of a predicate's string form.

    Both the :func:`~repro.relational.expressions.conjoin` shape
    ``(A AND B)`` *and* the bare ``A AND B`` split into ``[A, B]`` — a store
    lookup by either spelling must produce the same canonical key.  Nested
    groups such as ``(A AND B) AND C`` flatten recursively to ``[A, B, C]``,
    matching expression-level conjunct flattening.  A string with no
    top-level AND is a single conjunct, returned as written.
    """
    stripped = text.strip()
    inner = _strip_wrapping_parens(stripped)
    conjuncts: List[str] = []
    depth = 0
    start = 0
    index = 0
    while index < len(inner):
        character = inner[index]
        if character == "(":
            depth += 1
        elif character == ")":
            depth -= 1
        elif depth == 0 and inner.startswith(" AND ", index):
            conjuncts.append(inner[start:index].strip())
            index += len(" AND ")
            start = index
            continue
        index += 1
    conjuncts.append(inner[start:].strip())
    if len(conjuncts) == 1:
        return [stripped]
    flattened: List[str] = []
    for conjunct in conjuncts:
        flattened.extend(_split_top_level_and(conjunct))
    return flattened


def canonical_predicate_key(predicate: object) -> str:
    """A predicate's *application-order-independent* identity key.

    Observed selectivities must survive plan-shape changes: under a reordered
    UDF plan the same predicate is pushed at a different operator, its
    conjuncts may arrive in a different order, and a key derived from "where
    it ran" diverges from the key the estimator asks for.  Canonicalising the
    predicate — top-level AND conjuncts sorted — makes the key a property of
    *what* the predicate is, not of where the plan applied it.

    An :class:`~repro.relational.expressions.Expression` is split through its
    own structure (:func:`~repro.relational.expressions.conjuncts`), which is
    exact; the string form is only parsed for plain-string inputs (store
    lookups), where the splitter respects parenthesis depth.
    """
    if predicate is None:
        return ""
    from repro.relational.expressions import Expression, conjuncts as _conjuncts

    if isinstance(predicate, Expression):
        parts = [str(part) for part in _conjuncts(predicate)]
        if len(parts) > 1:
            return "(" + " AND ".join(sorted(parts)) + ")"
        return str(predicate).strip()
    text = str(predicate).strip()
    if not text:
        return ""
    parts = _split_top_level_and(text)
    if len(parts) > 1:
        return "(" + " AND ".join(sorted(parts)) + ")"
    return text


def _bare_column(name: str) -> str:
    """Lower-cased column name with any table qualifier stripped."""
    text = str(name)
    return (text.rpartition(".")[2] if "." in text else text).strip().lower()


def canonical_join_key(columns: Iterable[str]) -> str:
    """A join predicate's order/qualification-independent identity key.

    The observer sees an executed join operator's ``left_keys``/``right_keys``
    (often qualified); the estimator asks with the predicate's referenced
    columns.  Sorting the de-duplicated bare names makes both spellings meet
    at the same key.
    """
    return "|".join(sorted({_bare_column(name) for name in columns if str(name).strip()}))


class _Ewma:
    """A tiny exponentially weighted moving average."""

    __slots__ = ("value", "samples", "alpha")

    def __init__(self, alpha: float) -> None:
        self.value: Optional[float] = None
        self.samples = 0
        self.alpha = alpha

    def update(self, sample: float) -> None:
        self.samples += 1
        if self.value is None:
            self.value = sample
        else:
            self.value = (1.0 - self.alpha) * self.value + self.alpha * sample

    def to_state(self) -> List[object]:
        return [self.value, self.samples]

    @classmethod
    def from_state(cls, state: object, alpha: float) -> "_Ewma":
        estimate = cls(alpha)
        if not isinstance(state, (list, tuple)) or len(state) != 2:
            raise ValueError(f"malformed EWMA state: {state!r}")
        value, samples = state
        if value is not None and not isinstance(value, (int, float)):
            raise ValueError(f"malformed EWMA value: {value!r}")
        estimate.value = float(value) if value is not None else None
        estimate.samples = int(samples)
        return estimate


class StatisticsStore:
    """Observed-statistics feedback shared by every query on a database.

    ``smoothing`` is the EWMA weight of the newest observation: 1.0 keeps
    only the latest query's numbers, small values change estimates slowly.
    """

    def __init__(self, smoothing: float = 0.5, contention_aware: bool = False) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.smoothing = smoothing
        #: When set, bandwidth estimates fold in sender-side queueing time
        #: (:attr:`LinkObservation.achieved_bandwidth`): on a shared trunk
        #: the queueing is other tenants' traffic, so the calibrated network
        #: reflects the *share* this store's queries actually get — plans and
        #: controllers then adapt to contention, not just to the raw link.
        self.contention_aware = contention_aware
        self.queries_observed = 0

        self._downlink_bandwidth = _Ewma(smoothing)
        self._uplink_bandwidth = _Ewma(smoothing)
        self._downlink_queueing = _Ewma(smoothing)
        self._uplink_queueing = _Ewma(smoothing)
        # Per-server-site bandwidth estimates (scale-out topologies): each
        # site's channel calibrates independently, so replica choice can be
        # priced from what *that* site's link actually delivered.
        self._site_bandwidths: Dict[str, Tuple[_Ewma, _Ewma]] = {}
        self._udf_cost: Dict[str, _Ewma] = {}
        # Observed UDF selectivities are keyed by (UDF, canonical predicate):
        # ``Score(V) >= 100`` and ``Score(V) >= 160`` select different
        # fractions of the same UDF's results, and blending them under the
        # UDF's name would miscalibrate both.
        self._udf_selectivity: Dict[Tuple[str, str], _Ewma] = {}
        # The same observations keyed by canonical predicate identity alone.
        # Under a reordered UDF plan a predicate spanning several UDFs is
        # pushed at a different operator than the estimator credits it to;
        # the (UDF, predicate) key then diverges and only the plan-shape-
        # independent predicate identity still matches.
        self._predicate_identity_selectivity: Dict[str, _Ewma] = {}
        self._udf_distinct_fraction: Dict[str, _Ewma] = {}
        self._predicate_selectivity: Dict[str, _Ewma] = {}
        # Observed equi-join selectivities keyed by canonical join key
        # (sorted bare join-column names): measured output/cross-product
        # ratios the estimator prefers over the 1/max(V(A), V(B)) formula.
        self._join_selectivity: Dict[str, _Ewma] = {}
        # Observed distinct-value evidence per bare column name, derived from
        # column-vs-literal equality filters (selectivity ≈ 1/V(A)).  Feeds
        # :meth:`column_distinct_evidence`, which overrides the neutral
        # "every value distinct" default for columns without exact statistics.
        self._column_distinct: Dict[str, _Ewma] = {}
        self._batch_size = _Ewma(smoothing)
        self._udf_batch_size: Dict[str, _Ewma] = {}

    # -- recording ---------------------------------------------------------------------

    def record(self, observation: QueryObservation, site: Optional[str] = None) -> None:
        """Fold one query's observation into the running estimates.

        With ``site`` the link measurements calibrate that *server site's*
        per-site bandwidth estimates instead of the single-connection ones —
        a scatter-gather query observes one channel per site, and blending a
        degraded replica's bandwidth into the global estimate would
        miscalibrate every other site.  UDF costs, selectivities, and batch
        sizes are site-independent and always feed the shared tables.
        """
        self.queries_observed += 1
        if site is None:
            down_slot = (self._downlink_bandwidth, self._downlink_queueing)
            up_slot = (self._uplink_bandwidth, self._uplink_queueing)
        else:
            pair = self._site_bandwidths.get(site)
            if pair is None:
                pair = self._site_bandwidths[site] = (
                    _Ewma(self.smoothing),
                    _Ewma(self.smoothing),
                )
            down_slot = (pair[0], _Ewma(self.smoothing))
            up_slot = (pair[1], _Ewma(self.smoothing))
        for link, bandwidth, queueing in (
            (observation.downlink,) + down_slot,
            (observation.uplink,) + up_slot,
        ):
            if link is None:
                continue
            observed = (
                link.achieved_bandwidth
                if self.contention_aware
                else link.effective_bandwidth
            )
            if observed is not None:
                bandwidth.update(observed)
            if link.message_count > 0:
                queueing.update(link.mean_queueing_seconds)

        for name, udf in observation.udfs.items():
            key = name.lower()
            cost = udf.measured_cost_per_call
            if cost is not None:
                self._udf_cost.setdefault(key, _Ewma(self.smoothing)).update(cost)
            selectivity = udf.observed_selectivity
            if selectivity is not None:
                canonical = canonical_predicate_key(udf.predicate)
                self._udf_selectivity.setdefault(
                    (key, canonical), _Ewma(self.smoothing)
                ).update(selectivity)
                if canonical:
                    self._predicate_identity_selectivity.setdefault(
                        canonical, _Ewma(self.smoothing)
                    ).update(selectivity)
            distinct = udf.observed_distinct_fraction
            if distinct is not None:
                self._udf_distinct_fraction.setdefault(key, _Ewma(self.smoothing)).update(
                    distinct
                )

        for predicate in observation.predicates:
            selectivity = predicate.observed_selectivity
            if selectivity is not None:
                self._predicate_selectivity.setdefault(
                    predicate.predicate, _Ewma(self.smoothing)
                ).update(selectivity)
                column = getattr(predicate, "equality_column", None)
                if column is not None and selectivity > 0.0:
                    # selectivity of "col = literal" ≈ 1/V(col): invert for
                    # distinct-count evidence, capped at the observed input.
                    distinct = min(1.0 / selectivity, float(max(predicate.input_rows, 1)))
                    self._column_distinct.setdefault(
                        _bare_column(column), _Ewma(self.smoothing)
                    ).update(distinct)

        for join in getattr(observation, "joins", ()):
            selectivity = join.observed_selectivity
            if selectivity is not None:
                key = canonical_join_key(join.columns)
                if key:
                    self._join_selectivity.setdefault(
                        key, _Ewma(self.smoothing)
                    ).update(selectivity)

        if observation.converged_batch_size is not None:
            self._batch_size.update(float(observation.converged_batch_size))
        for name, size in observation.udf_batch_sizes.items():
            self._udf_batch_size.setdefault(name.lower(), _Ewma(self.smoothing)).update(
                float(size)
            )

    # -- calibrated lookups (the protocol the cost estimator speaks) -------------------

    def udf_cost(self, name: str, default: float) -> float:
        """Measured seconds per call for ``name``, or ``default`` if unobserved."""
        estimate = self._udf_cost.get(name.lower())
        if estimate is None or estimate.value is None:
            return default
        return estimate.value

    def udf_selectivity(
        self, name: str, default: float, predicate: Optional[str] = None
    ) -> float:
        """Observed selectivity of ``name`` filtered by ``predicate``, or ``default``.

        With ``predicate`` the lookup goes by canonical predicate key: an
        exact (UDF, predicate) observation wins, else any observation of the
        *same predicate identity* — whichever operator the plan that ran it
        happened to push it at (a reordered UDF plan pushes a multi-UDF
        predicate at a different operator than the estimator credits it to).
        Without it (legacy callers and reporting), the estimate is returned
        only when the UDF has been observed under exactly one predicate —
        when several have been seen, picking any of them would silently blend
        unrelated filters, so the declared default wins.
        """
        key = name.lower()
        if predicate is not None:
            canonical = canonical_predicate_key(predicate)
            estimate = self._udf_selectivity.get((key, canonical))
            if estimate is None or estimate.value is None:
                estimate = (
                    self._predicate_identity_selectivity.get(canonical)
                    if canonical
                    else None
                )
            if estimate is None or estimate.value is None:
                return default
            return min(1.0, max(0.0, estimate.value))
        matches = [
            estimate
            for (udf, _), estimate in self._udf_selectivity.items()
            if udf == key and estimate.value is not None
        ]
        if len(matches) != 1:
            return default
        return min(1.0, max(0.0, matches[0].value))

    def selectivity_prior(
        self, name: str, predicate: Optional[str]
    ) -> Optional[float]:
        """The observed prior for (``name``, ``predicate``), or None if unobserved.

        Unlike :meth:`udf_selectivity` this distinguishes "never observed"
        from any declared default, which is what warm starts need: a repeat
        query should only skip the evidence floor when an earlier run really
        measured this predicate.
        """
        sentinel = object()
        prior = self.udf_selectivity(name, sentinel, predicate=predicate or "")
        if prior is sentinel:
            return None
        return prior

    def udf_selectivities(self, name: str) -> Dict[str, float]:
        """All observed selectivities of ``name``, keyed by predicate text."""
        key = name.lower()
        return {
            predicate: min(1.0, max(0.0, estimate.value))
            for (udf, predicate), estimate in self._udf_selectivity.items()
            if udf == key and estimate.value is not None
        }

    def udf_distinct_fraction(self, name: str, default: float) -> float:
        estimate = self._udf_distinct_fraction.get(name.lower())
        if estimate is None or estimate.value is None:
            return default
        return min(1.0, max(0.0, estimate.value))

    def predicate_selectivity(self, predicate: str, default: float) -> float:
        estimate = self._predicate_selectivity.get(predicate)
        if estimate is None or estimate.value is None:
            return default
        return min(1.0, max(0.0, estimate.value))

    def join_selectivity(self, columns: Iterable[str], default: object = None) -> object:
        """Observed selectivity of the equi-join over ``columns``, or ``default``.

        ``columns`` may come qualified (operator join keys) or bare (predicate
        references); both resolve to the same canonical key.
        """
        estimate = self._join_selectivity.get(canonical_join_key(columns))
        if estimate is None or estimate.value is None:
            return default
        return min(1.0, max(0.0, estimate.value))

    def column_distinct_evidence(self) -> Dict[str, float]:
        """Observed distinct-value counts per bare column name.

        Derived from measured equality-filter selectivities (V(A) ≈ 1/s).
        The cost estimator overlays these onto table statistics for columns
        that have no exact statistics, replacing the neutral "every value is
        distinct" default with evidence.
        """
        return {
            name: max(1.0, estimate.value)
            for name, estimate in self._column_distinct.items()
            if estimate.value is not None
        }

    def forget_columns(self, columns: Iterable[str]) -> None:
        """Drop evidence derived from the named columns.

        Called when a table is dropped or replaced: its columns' observed
        distinct counts and any join selectivities touching them describe
        data that no longer exists.
        """
        stale = {_bare_column(name) for name in columns}
        for name in stale:
            self._column_distinct.pop(name, None)
        for key in [
            key
            for key in self._join_selectivity
            if stale.intersection(key.split("|"))
        ]:
            del self._join_selectivity[key]

    # -- calibrated planning inputs -----------------------------------------------------

    @property
    def observed_downlink_bandwidth(self) -> Optional[float]:
        return self._downlink_bandwidth.value

    @property
    def observed_uplink_bandwidth(self) -> Optional[float]:
        return self._uplink_bandwidth.value

    def calibrated_network(self, configured: NetworkConfig) -> NetworkConfig:
        """``configured`` with bandwidths replaced by observed effective values."""
        downlink = self._downlink_bandwidth.value
        uplink = self._uplink_bandwidth.value
        if downlink is None and uplink is None:
            return configured
        return replace(
            configured,
            downlink_bandwidth=downlink if downlink else configured.downlink_bandwidth,
            uplink_bandwidth=uplink if uplink else configured.uplink_bandwidth,
            name=f"{configured.name}+observed",
        )

    def observed_site_bandwidth(
        self, site: str
    ) -> Tuple[Optional[float], Optional[float]]:
        """(downlink, uplink) bytes/s observed for ``site``, or Nones."""
        pair = self._site_bandwidths.get(site)
        if pair is None:
            return (None, None)
        return (pair[0].value, pair[1].value)

    def calibrated_network_for_site(
        self, site: str, configured: NetworkConfig
    ) -> NetworkConfig:
        """``configured`` recalibrated from ``site``'s own observations.

        Falls back per direction: the site's observed bandwidth, else the
        global (single-connection) observation, else the configured value —
        so an unvisited replica is still priced from whatever the system has
        learned about links in general.
        """
        site_down, site_up = self.observed_site_bandwidth(site)
        downlink = site_down if site_down else self._downlink_bandwidth.value
        uplink = site_up if site_up else self._uplink_bandwidth.value
        if downlink is None and uplink is None:
            return configured
        return replace(
            configured,
            downlink_bandwidth=downlink if downlink else configured.downlink_bandwidth,
            uplink_bandwidth=uplink if uplink else configured.uplink_bandwidth,
            name=f"{configured.name}+observed@{site}",
        )

    @property
    def site_ids(self) -> List[str]:
        """Server sites with at least one recorded observation."""
        return sorted(self._site_bandwidths)

    def calibrated_cost_settings(self, settings: "CostSettings") -> "CostSettings":
        """``settings`` seeded with the converged batch size, once one is known.

        Pinning ``batch_size`` makes the optimizer cost plans at the batch
        size adaptive execution converged to (and skip the candidate sweep),
        which is exactly the "second query plans with measured parameters"
        behaviour the feedback loop is for.
        """
        preferred = self.preferred_batch_size()
        if preferred is None or settings.batch_size != 1.0:
            return settings
        return settings.with_batch_size(float(preferred))

    def preferred_batch_size(self, default: Optional[int] = None) -> Optional[int]:
        """The batch size adaptive runs converged to (rounded), if any."""
        if self._batch_size.value is None:
            return default
        return max(1, int(round(self._batch_size.value)))

    def preferred_batch_size_for(
        self, udf_name: str, default: Optional[int] = None
    ) -> Optional[int]:
        """The batch size adaptive runs of the named UDF converged to.

        Falls back to the plan-wide preferred size (then ``default``) when
        this particular UDF has never run under a per-UDF controller — a new
        UDF still warm-starts from what the environment taught us.
        """
        estimate = self._udf_batch_size.get(udf_name.lower())
        if estimate is None or estimate.value is None:
            return self.preferred_batch_size(default)
        return max(1, int(round(estimate.value)))

    # -- persistence -------------------------------------------------------------------

    def to_state(self, fingerprint: Optional[str] = None) -> Dict[str, object]:
        """The store's full calibrated state as a JSON-serialisable dict."""
        return {
            "version": STORE_VERSION,
            "fingerprint": fingerprint,
            "smoothing": self.smoothing,
            "contention_aware": self.contention_aware,
            "queries_observed": self.queries_observed,
            "downlink_bandwidth": self._downlink_bandwidth.to_state(),
            "uplink_bandwidth": self._uplink_bandwidth.to_state(),
            "downlink_queueing": self._downlink_queueing.to_state(),
            "uplink_queueing": self._uplink_queueing.to_state(),
            "site_bandwidths": {
                site: [pair[0].to_state(), pair[1].to_state()]
                for site, pair in sorted(self._site_bandwidths.items())
            },
            "udf_cost": {
                name: estimate.to_state()
                for name, estimate in sorted(self._udf_cost.items())
            },
            "udf_selectivity": [
                [udf, predicate, estimate.to_state()]
                for (udf, predicate), estimate in sorted(self._udf_selectivity.items())
            ],
            "predicate_identity_selectivity": {
                key: estimate.to_state()
                for key, estimate in sorted(
                    self._predicate_identity_selectivity.items()
                )
            },
            "udf_distinct_fraction": {
                name: estimate.to_state()
                for name, estimate in sorted(self._udf_distinct_fraction.items())
            },
            "predicate_selectivity": {
                key: estimate.to_state()
                for key, estimate in sorted(self._predicate_selectivity.items())
            },
            "join_selectivity": {
                key: estimate.to_state()
                for key, estimate in sorted(self._join_selectivity.items())
            },
            "column_distinct": {
                name: estimate.to_state()
                for name, estimate in sorted(self._column_distinct.items())
            },
            "batch_size": self._batch_size.to_state(),
            "udf_batch_size": {
                name: estimate.to_state()
                for name, estimate in sorted(self._udf_batch_size.items())
            },
        }

    def save(self, path: str, fingerprint: Optional[str] = None) -> None:
        """Persist the calibrated state to ``path`` (atomic JSON snapshot).

        ``fingerprint`` identifies the workload the statistics describe
        (schemas + UDF registry); :meth:`restore` refuses a snapshot whose
        fingerprint differs, so stale statistics never warm-start a changed
        database.
        """
        payload = json.dumps(self.to_state(fingerprint), indent=2, sort_keys=True)
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        os.replace(tmp_path, path)

    def restore(self, path: str, fingerprint: Optional[str] = None) -> bool:
        """Load persisted state from ``path`` into this store, in place.

        Returns True on success.  A missing, corrupt, version-mismatched, or
        fingerprint-mismatched snapshot leaves the store untouched, emits a
        warning (except for the missing-file case, which is the normal cold
        start), and returns False — persistence failures must never take the
        database down.
        """
        if not os.path.exists(path):
            return False
        try:
            with open(path, "r", encoding="utf-8") as handle:
                state = json.load(handle)
            if not isinstance(state, dict):
                raise ValueError("snapshot is not an object")
            version = state.get("version")
            if version != STORE_VERSION:
                raise ValueError(
                    f"snapshot version {version!r} != supported {STORE_VERSION}"
                )
            saved_fingerprint = state.get("fingerprint")
            if (
                fingerprint is not None
                and saved_fingerprint is not None
                and saved_fingerprint != fingerprint
            ):
                warnings.warn(
                    f"statistics snapshot {path!r} was captured for a different "
                    "workload (schema or UDF registry changed); starting cold",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return False
            self._apply_state(state)
        except (OSError, ValueError, TypeError, KeyError) as exc:
            warnings.warn(
                f"ignoring unreadable statistics snapshot {path!r}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            return False
        return True

    @classmethod
    def load(
        cls,
        path: str,
        fingerprint: Optional[str] = None,
        smoothing: float = 0.5,
        contention_aware: bool = False,
    ) -> "StatisticsStore":
        """A store warm-started from ``path``, or a cold one when unusable."""
        store = cls(smoothing=smoothing, contention_aware=contention_aware)
        store.restore(path, fingerprint)
        return store

    def _apply_state(self, state: Dict[str, object]) -> None:
        """Replace this store's estimates with a validated snapshot's.

        Everything is parsed into local variables first so a malformed
        snapshot raises before any estimate is overwritten.
        """
        alpha = self.smoothing

        def ewma(value: object) -> _Ewma:
            return _Ewma.from_state(value, alpha)

        def ewma_map(value: object) -> Dict[str, _Ewma]:
            if not isinstance(value, dict):
                raise ValueError(f"expected an object, got {value!r}")
            return {str(key): ewma(item) for key, item in value.items()}

        downlink = ewma(state.get("downlink_bandwidth", [None, 0]))
        uplink = ewma(state.get("uplink_bandwidth", [None, 0]))
        downlink_queueing = ewma(state.get("downlink_queueing", [None, 0]))
        uplink_queueing = ewma(state.get("uplink_queueing", [None, 0]))
        sites_state = state.get("site_bandwidths", {})
        if not isinstance(sites_state, dict):
            raise ValueError("site_bandwidths must be an object")
        sites = {
            str(site): (ewma(pair[0]), ewma(pair[1]))
            for site, pair in sites_state.items()
        }
        selectivity_state = state.get("udf_selectivity", [])
        if not isinstance(selectivity_state, list):
            raise ValueError("udf_selectivity must be a list")
        udf_selectivity = {
            (str(entry[0]), str(entry[1])): ewma(entry[2])
            for entry in selectivity_state
        }
        udf_cost = ewma_map(state.get("udf_cost", {}))
        identity = ewma_map(state.get("predicate_identity_selectivity", {}))
        distinct_fraction = ewma_map(state.get("udf_distinct_fraction", {}))
        predicate_selectivity = ewma_map(state.get("predicate_selectivity", {}))
        join_selectivity = ewma_map(state.get("join_selectivity", {}))
        column_distinct = ewma_map(state.get("column_distinct", {}))
        batch_size = ewma(state.get("batch_size", [None, 0]))
        udf_batch_size = ewma_map(state.get("udf_batch_size", {}))

        self.queries_observed = int(state.get("queries_observed", 0))
        self._downlink_bandwidth = downlink
        self._uplink_bandwidth = uplink
        self._downlink_queueing = downlink_queueing
        self._uplink_queueing = uplink_queueing
        self._site_bandwidths = sites
        self._udf_cost = udf_cost
        self._udf_selectivity = udf_selectivity
        self._predicate_identity_selectivity = identity
        self._udf_distinct_fraction = distinct_fraction
        self._predicate_selectivity = predicate_selectivity
        self._join_selectivity = join_selectivity
        self._column_distinct = column_distinct
        self._batch_size = batch_size
        self._udf_batch_size = udf_batch_size

    # -- reporting ---------------------------------------------------------------------

    def summary(self) -> str:
        lines: List[str] = [f"statistics over {self.queries_observed} queries:"]
        if self._downlink_bandwidth.value is not None:
            lines.append(f"  downlink ~{self._downlink_bandwidth.value:.0f} B/s")
        if self._uplink_bandwidth.value is not None:
            lines.append(f"  uplink ~{self._uplink_bandwidth.value:.0f} B/s")
        selectivity_udfs = {udf for udf, _ in self._udf_selectivity}
        for key in sorted(set(self._udf_cost) | selectivity_udfs):
            bits = []
            cost = self._udf_cost.get(key)
            if cost is not None and cost.value is not None:
                bits.append(f"{cost.value * 1000:.3f} ms/call")
            for predicate, value in sorted(self.udf_selectivities(key).items()):
                label = f" [{predicate}]" if predicate else ""
                bits.append(f"selectivity{label} {value:.2f}")
            lines.append(f"  udf {key}: " + ", ".join(bits))
        preferred = self.preferred_batch_size()
        if preferred is not None:
            lines.append(f"  preferred batch size {preferred}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"StatisticsStore(queries={self.queries_observed})"


class TenantStatistics:
    """Per-tenant :class:`StatisticsStore` isolation.

    Under multi-tenancy one shared store would let tenant A's bulk scans
    pollute tenant B's calibrated bandwidth and selectivities.  This registry
    lazily creates one store (and one matching
    :class:`~repro.adaptive.observer.RuntimeObserver`) per tenant id, all
    with the same smoothing/contention settings, so each tenant's feedback
    loop closes over its own traffic only.
    """

    def __init__(self, smoothing: float = 0.5, contention_aware: bool = False) -> None:
        self.smoothing = smoothing
        self.contention_aware = contention_aware
        self._stores: Dict[str, StatisticsStore] = {}
        self._observers: Dict[str, object] = {}

    def for_tenant(self, tenant_id: str) -> StatisticsStore:
        store = self._stores.get(tenant_id)
        if store is None:
            store = StatisticsStore(
                smoothing=self.smoothing, contention_aware=self.contention_aware
            )
            self._stores[tenant_id] = store
        return store

    def observer_for(self, tenant_id: str) -> "object":
        observer = self._observers.get(tenant_id)
        if observer is None:
            from repro.adaptive.observer import RuntimeObserver

            observer = RuntimeObserver(self.for_tenant(tenant_id))
            self._observers[tenant_id] = observer
        return observer

    @property
    def tenant_ids(self) -> List[str]:
        return sorted(self._stores)

    def __repr__(self) -> str:
        return f"TenantStatistics(tenants={len(self._stores)})"
