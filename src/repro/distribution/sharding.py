"""Horizontal sharding: split one logical table into disjoint fragments.

A :class:`ShardingSpec` declares how a table is partitioned — hash or range
on one column — and how many replicas each shard keeps.  :func:`shard_table`
materialises the fragments; each fragment is a :class:`Table` *named like
the original*, so a per-shard catalog binds the original SQL unchanged and
plans build against the fragment's exact statistics.

Hashing is deterministic across processes (CRC32 of the value's ``repr``,
plain modulo for integers) — Python's builtin ``hash`` is salted per process
and would scatter rows differently on every run, breaking both replica
agreement and test reproducibility.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.relational.table import Table


@dataclass(frozen=True)
class ShardingSpec:
    """How one logical table is split over shards.

    ``method`` is ``"hash"`` (CRC32/modulo on ``column``) or ``"range"``
    (``boundaries`` are the ascending split points; shard *i* takes values in
    ``[boundaries[i-1], boundaries[i])``).  With ``boundaries`` omitted under
    range sharding, :func:`shard_table` derives them from the data's
    quantiles.  ``replication_factor`` is how many sites keep a copy of each
    shard (placement itself is the cluster's decision, not the spec's).
    """

    table: str
    column: str
    shards: int
    method: str = "hash"
    replication_factor: int = 1
    boundaries: Optional[Tuple[Any, ...]] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("a sharding spec needs at least one shard")
        if self.replication_factor < 1:
            raise ValueError("replication factor must be at least 1")
        if self.method not in ("hash", "range"):
            raise ValueError(
                f"unknown sharding method {self.method!r} (want 'hash' or 'range')"
            )
        if self.boundaries is not None:
            if self.method != "range":
                raise ValueError("boundaries are only meaningful for range sharding")
            ordered = list(self.boundaries)
            if ordered != sorted(ordered):
                raise ValueError("range boundaries must be ascending")
            if len(ordered) != self.shards - 1:
                raise ValueError(
                    f"{self.shards} shards need {self.shards - 1} boundaries, "
                    f"got {len(ordered)}"
                )

    def describe(self) -> str:
        detail = f"{self.method} on {self.column}"
        if self.method == "range" and self.boundaries is not None:
            detail += f" at {list(self.boundaries)}"
        return (
            f"{self.table}: {self.shards} shards ({detail}), "
            f"replication x{self.replication_factor}"
        )


def hash_shard_of(value: Any, shards: int) -> int:
    """The shard an individual value hashes to — deterministic across runs."""
    if shards == 1:
        return 0
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        return value % shards
    return zlib.crc32(repr(value).encode("utf-8")) % shards


def range_boundaries_from_data(values: Sequence[Any], shards: int) -> Tuple[Any, ...]:
    """Even quantile split points over the observed values."""
    ordered = sorted(values)
    if not ordered:
        return tuple()
    boundaries: List[Any] = []
    for index in range(1, shards):
        position = (index * len(ordered)) // shards
        boundaries.append(ordered[min(position, len(ordered) - 1)])
    return tuple(boundaries)


def range_shard_of(value: Any, boundaries: Sequence[Any]) -> int:
    """The shard of a value under the given ascending boundaries."""
    return bisect_right(list(boundaries), value)


@dataclass
class ShardedTable:
    """The materialised fragments of one sharded logical table."""

    spec: ShardingSpec
    fragments: List[Table] = field(default_factory=list)
    boundaries: Tuple[Any, ...] = ()

    @property
    def shard_count(self) -> int:
        return len(self.fragments)

    def total_rows(self) -> int:
        return sum(len(fragment) for fragment in self.fragments)

    def describe(self) -> str:
        sizes = ", ".join(str(len(fragment)) for fragment in self.fragments)
        return f"{self.spec.describe()} | rows per shard: [{sizes}]"


def shard_table(table: Table, spec: ShardingSpec) -> ShardedTable:
    """Split ``table`` into disjoint fragments according to ``spec``.

    Every fragment keeps the original table name and schema, so per-shard
    catalogs bind the original SQL without rewriting; the union of all
    fragments is exactly the original row multiset.
    """
    try:
        position = table.schema.index_of(spec.column)
    except Exception:
        names = table.schema.names()
        raise PlanError(
            f"sharding column {spec.column!r} is not in table {table.name!r} "
            f"(columns: {names})"
        )
    boundaries: Tuple[Any, ...] = ()
    if spec.method == "range":
        boundaries = (
            spec.boundaries
            if spec.boundaries is not None
            else range_boundaries_from_data(
                [row[position] for row in table.rows], spec.shards
            )
        )
    fragments = [Table(table.name, table.schema) for _ in range(spec.shards)]
    for row in table.rows:
        value = row[position]
        if spec.method == "hash":
            shard = hash_shard_of(value, spec.shards)
        else:
            shard = range_shard_of(value, boundaries)
        fragments[shard].insert(list(row))
    return ShardedTable(spec=spec, fragments=fragments, boundaries=boundaries)
