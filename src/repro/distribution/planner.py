"""Distributed planning: per-shard plans, replica pricing, site selection.

The :class:`ClusterPlanner` grows single-site optimization by one decision
dimension — *which replica runs each shard*:

1. every (shard, candidate replica) pair is priced by running the ordinary
   System-R optimizer over the shard *fragment* (bound per-shard, so the
   fragment's exact statistics drive the estimate) against that site's
   network, **calibrated per site** from the statistics store's observed
   per-site bandwidths (:meth:`StatisticsStore.calibrated_network_for_site`);
2. the :class:`~repro.core.optimizer.enumerator.SiteSelectionEnumerator`
   assigns shards to replicas minimising the fan-out makespan (shard fan-out
   is priced as the max over sites of the overlapped per-site cost — see
   :func:`~repro.core.optimizer.cost.scatter_gather_cost`);
3. the resulting :class:`ClusterPlan` carries one :class:`ShardTask` per
   shard — fragment, assigned site, candidate replicas with their costs, and
   (under ``optimize=True``) the per-site optimizer decision the executor
   realises.

Mid-query, the distribution engine revisits step 2 per shard: when the
observed per-segment time on the committed replica exceeds a candidate
replica's estimate by the :class:`MigrationPolicy`'s hysteresis, the
remaining shard work migrates off the slow/contended replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import PlanError
from repro.adaptive.store import StatisticsStore
from repro.client.registry import UdfRegistry
from repro.core.optimizer import (
    OptimizationDecision,
    Optimizer,
    SiteSelectionEnumerator,
    scatter_gather_cost,
)
from repro.core.strategies import StrategyConfig
from repro.relational.catalog import Catalog
from repro.relational.table import Table
from repro.distribution.cluster import ClusterConfig
from repro.distribution.sharding import ShardedTable
from repro.sql.binder import Binder
from repro.sql.logical import BoundQuery


@dataclass(frozen=True)
class MigrationPolicy:
    """When mid-query shard migration is worth the switch.

    A shard migrates off its committed replica only when the best candidate
    replica's estimated remaining time (plus ``switch_penalty_seconds``)
    beats the observed-rate projection on the current replica by more than
    the ``hysteresis`` fraction — the same damping idea the strategy
    switcher uses, so transient jitter does not bounce shards between
    replicas.
    """

    hysteresis: float = 0.25
    switch_penalty_seconds: float = 0.0
    min_segments_remaining: int = 1

    def should_migrate(
        self, current_estimate: float, candidate_estimate: float
    ) -> bool:
        adjusted = candidate_estimate + self.switch_penalty_seconds
        return adjusted * (1.0 + self.hysteresis) < current_estimate


class _SiteCalibratedStatistics:
    """A statistics-store view whose network calibration is per-site.

    The single-site :class:`Optimizer` calls ``calibrated_network`` with the
    *global* observed bandwidths; for replica pricing each candidate site
    must be calibrated from its own observations instead.  Everything else
    (UDF costs, selectivities, batch sizes) delegates to the shared store.
    """

    def __init__(self, store: StatisticsStore, site: str) -> None:
        self._store = store
        self._site = site

    def calibrated_network(self, configured):
        return self._store.calibrated_network_for_site(self._site, configured)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._store, name)


@dataclass
class ShardTask:
    """One shard's unit of distributed work."""

    shard_index: int
    site: str
    fragment: Optional[Table]
    bound: BoundQuery
    replicas: List[str] = field(default_factory=list)
    candidate_costs: Dict[str, float] = field(default_factory=dict)
    decision: Optional[OptimizationDecision] = None
    estimated_cost: float = 0.0

    @property
    def label(self) -> str:
        return f"shard{self.shard_index}"

    def describe(self) -> str:
        others = {
            site: round(cost, 4)
            for site, cost in sorted(self.candidate_costs.items())
        }
        return (
            f"{self.label} -> {self.site} "
            f"(est {self.estimated_cost:.3f}s, candidates {others})"
        )


@dataclass
class ClusterPlan:
    """The distributed plan: shard tasks plus the fan-out estimate."""

    tasks: List[ShardTask]
    makespan_estimate: float
    site_loads: Dict[str, float]
    sharded_table: Optional[str] = None

    def describe(self) -> str:
        target = self.sharded_table if self.sharded_table else "(unsharded)"
        lines = [
            f"cluster plan over {target}: {len(self.tasks)} tasks, "
            f"estimated makespan {self.makespan_estimate:.3f}s"
        ]
        for task in self.tasks:
            lines.append("  " + task.describe())
        return "\n".join(lines)


class ClusterPlanner:
    """Builds a :class:`ClusterPlan` for one bound query over the cluster."""

    def __init__(
        self,
        cluster: ClusterConfig,
        unsharded: Catalog,
        sharded: Dict[str, ShardedTable],
        udfs: UdfRegistry,
        statistics: Optional[StatisticsStore] = None,
        default_config: Optional[StrategyConfig] = None,
    ) -> None:
        self.cluster = cluster
        self.unsharded = unsharded
        self.sharded = {name.lower(): table for name, table in sharded.items()}
        self.udfs = udfs
        self.statistics = statistics
        self.default_config = (
            default_config if default_config is not None else StrategyConfig()
        )

    # -- planning ---------------------------------------------------------------------

    def plan(
        self,
        query: BoundQuery,
        config: Optional[StrategyConfig] = None,
        optimize: bool = False,
        calibrated: bool = True,
    ) -> ClusterPlan:
        config = config if config is not None else self.default_config
        sharded_aliases = [
            bound.table.name
            for bound in query.tables
            if bound.table.name.lower() in self.sharded
        ]
        if len(set(alias.lower() for alias in sharded_aliases)) > 1:
            raise PlanError(
                f"scatter-gather supports at most one sharded table per query, "
                f"got {sorted(set(sharded_aliases))}"
            )
        if not sharded_aliases:
            return self._plan_unsharded(query, config, optimize, calibrated)
        return self._plan_sharded(
            query, sharded_aliases[0], config, optimize, calibrated
        )

    def _plan_sharded(
        self,
        query: BoundQuery,
        table_name: str,
        config: StrategyConfig,
        optimize: bool,
        calibrated: bool,
    ) -> ClusterPlan:
        sharded = self.sharded[table_name.lower()]
        placement = self.cluster.placement(sharded.spec)

        costs: Dict[Tuple[str, str], float] = {}
        decisions: Dict[Tuple[int, str], OptimizationDecision] = {}
        bounds: Dict[int, BoundQuery] = {}
        for index, fragment in enumerate(sharded.fragments):
            bound = self.bind_for_fragment(query.sql, fragment)
            bounds[index] = bound
            for site_name in placement[index]:
                decision = self._price(bound, site_name, config, calibrated)
                costs[(f"shard{index}", site_name)] = decision.estimated_cost
                decisions[(index, site_name)] = decision

        assignment = SiteSelectionEnumerator(costs).select()
        tasks: List[ShardTask] = []
        for index in range(sharded.spec.shards):
            shard_key = f"shard{index}"
            site_name = assignment.site_for(shard_key)
            tasks.append(
                ShardTask(
                    shard_index=index,
                    site=site_name,
                    fragment=sharded.fragments[index],
                    bound=bounds[index],
                    replicas=list(placement[index]),
                    candidate_costs={
                        site: costs[(shard_key, site)] for site in placement[index]
                    },
                    decision=decisions[(index, site_name)] if optimize else None,
                    estimated_cost=costs[(shard_key, site_name)],
                )
            )
        merge_rows = float(sum(len(task.fragment) for task in tasks if task.fragment))
        makespan = scatter_gather_cost(
            list(assignment.site_loads.values()), merge_rows=merge_rows
        )
        return ClusterPlan(
            tasks=tasks,
            makespan_estimate=makespan,
            site_loads=assignment.site_loads,
            sharded_table=sharded.spec.table,
        )

    def _plan_unsharded(
        self,
        query: BoundQuery,
        config: StrategyConfig,
        optimize: bool,
        calibrated: bool,
    ) -> ClusterPlan:
        """No sharded table in the query: run it whole on the cheapest site."""
        candidates: Dict[str, float] = {}
        decisions: Dict[str, OptimizationDecision] = {}
        for site in self.cluster.sites:
            decision = self._price(query, site.name, config, calibrated)
            candidates[site.name] = decision.estimated_cost
            decisions[site.name] = decision
        best = min(sorted(candidates), key=lambda name: candidates[name])
        task = ShardTask(
            shard_index=0,
            site=best,
            fragment=None,
            bound=query,
            replicas=sorted(candidates),
            candidate_costs=candidates,
            decision=decisions[best] if optimize else None,
            estimated_cost=candidates[best],
        )
        return ClusterPlan(
            tasks=[task],
            makespan_estimate=candidates[best],
            site_loads={best: candidates[best]},
            sharded_table=None,
        )

    # -- helpers ----------------------------------------------------------------------

    def bind_for_fragment(self, sql: str, fragment: Table) -> BoundQuery:
        """Bind the original SQL against a catalog where the sharded table is
        replaced by one fragment (unsharded tables are fully replicated)."""
        catalog = Catalog()
        catalog.register(fragment)
        for table in self.unsharded:
            if not catalog.has_table(table.name):
                catalog.register(table)
        return Binder(catalog, self.udfs).bind_sql(sql)

    def _price(
        self,
        bound: BoundQuery,
        site_name: str,
        config: StrategyConfig,
        calibrated: bool,
    ) -> OptimizationDecision:
        site = self.cluster.site(site_name)
        statistics = None
        if (
            calibrated
            and self.statistics is not None
            and self.statistics.queries_observed
        ):
            statistics = _SiteCalibratedStatistics(self.statistics, site_name)
        optimizer = Optimizer(
            site.network, default_config=config, statistics=statistics
        )
        return optimizer.optimize(bound)

    def site_estimate_seconds(
        self,
        site_name: str,
        downlink_bytes: float,
        uplink_bytes: float,
        messages: float = 0.0,
    ) -> float:
        """Projected transfer seconds for a byte profile on ``site_name``.

        Used by mid-query migration: the observed per-segment byte profile on
        the committed replica is re-priced on each candidate replica from its
        per-site calibrated (or configured) bandwidths.
        """
        site = self.cluster.site(site_name)
        network = site.network
        if self.statistics is not None:
            network = self.statistics.calibrated_network_for_site(
                site_name, network
            )
        down = downlink_bytes / network.downlink_bandwidth
        up = uplink_bytes / network.uplink_bandwidth
        return max(down, up) + messages * network.latency
