"""Cluster topology: N server sites, each behind its own (shareable) link.

A :class:`SiteConfig` is one server site — a name plus the
:class:`~repro.network.topology.NetworkConfig` of the client↔site link.  A
:class:`ClusterConfig` bundles the sites with the :class:`ShardingSpec`s of
the tables spread across them and fixes the *placement rule*: replica ``r``
of shard ``i`` lives on site ``(i + r) mod N`` (round-robin), so shards
spread evenly and each extra replica lands on a distinct site.

Each site gets its own shared trunk pair in the distribution engine
(see :mod:`repro.distribution.engine`): shard tasks co-located on one site
contend for that site's link exactly as tenants contend in
:mod:`repro.tenancy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.network.topology import NetworkConfig
from repro.distribution.sharding import ShardingSpec


@dataclass(frozen=True)
class SiteConfig:
    """One server site and the network between it and the client."""

    name: str
    network: NetworkConfig

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a site needs a non-empty name")

    def describe(self) -> str:
        return (
            f"site {self.name}: down {self.network.downlink_bandwidth:.0f} B/s, "
            f"up {self.network.uplink_bandwidth:.0f} B/s, "
            f"latency {self.network.latency * 1000.0:.1f} ms"
        )


class ClusterConfig:
    """The server sites plus how logical tables are sharded across them."""

    def __init__(
        self,
        sites: Sequence[SiteConfig],
        sharding: Sequence[ShardingSpec] = (),
    ) -> None:
        if not sites:
            raise ValueError("a cluster needs at least one site")
        names = [site.name for site in sites]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate site names in {names}")
        self.sites: Tuple[SiteConfig, ...] = tuple(sites)
        self._by_name: Dict[str, SiteConfig] = {site.name: site for site in sites}
        self._specs: Dict[str, ShardingSpec] = {}
        for spec in sharding:
            if spec.table.lower() in self._specs:
                raise ValueError(f"table {spec.table!r} has two sharding specs")
            if spec.replication_factor > len(self.sites):
                raise ValueError(
                    f"replication factor {spec.replication_factor} exceeds the "
                    f"{len(self.sites)} sites of the cluster"
                )
            self._specs[spec.table.lower()] = spec

    # -- lookups ----------------------------------------------------------------------

    @property
    def site_names(self) -> List[str]:
        return [site.name for site in self.sites]

    def site(self, name: str) -> SiteConfig:
        site = self._by_name.get(name)
        if site is None:
            raise PlanError(f"unknown site {name!r} (sites: {self.site_names})")
        return site

    def spec_for(self, table: str) -> Optional[ShardingSpec]:
        return self._specs.get(table.lower())

    @property
    def sharded_tables(self) -> List[str]:
        return sorted(spec.table for spec in self._specs.values())

    # -- placement --------------------------------------------------------------------

    def replica_sites(self, shard_index: int, spec: ShardingSpec) -> List[str]:
        """The sites holding shard ``shard_index``: round-robin placement.

        Replica ``r`` of shard ``i`` lives on site ``(i + r) mod N``; with a
        replication factor of 1 this is plain round-robin striping.
        """
        count = len(self.sites)
        return [
            self.sites[(shard_index + replica) % count].name
            for replica in range(min(spec.replication_factor, count))
        ]

    def placement(self, spec: ShardingSpec) -> Dict[int, List[str]]:
        """Shard index → replica sites, for the whole spec."""
        return {
            index: self.replica_sites(index, spec) for index in range(spec.shards)
        }

    # -- display ----------------------------------------------------------------------

    def describe(self) -> str:
        lines = [f"cluster: {len(self.sites)} sites"]
        for site in self.sites:
            lines.append("  " + site.describe())
        for spec in self._specs.values():
            lines.append(f"  {spec.describe()}")
            for index, sites in self.placement(spec).items():
                lines.append(f"    shard {index} -> {sites}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ClusterConfig(sites={self.site_names}, "
            f"sharded={self.sharded_tables})"
        )
