"""The distributed engine: scatter UDF shipping over sites, gather one answer.

:class:`DistributedDatabase` is the cluster-facing sibling of
:class:`~repro.server.engine.Database`.  Tables registered against it are
split per the cluster's :class:`~repro.distribution.sharding.ShardingSpec`s
(unsharded tables are fully replicated to every site); ``execute`` then

1. plans with the :class:`~repro.distribution.planner.ClusterPlanner`
   (per-shard plans, replica pricing from per-site calibrated bandwidth,
   makespan-minimising site selection),
2. fans the shard tasks out as baton-driven workers on **one shared
   simulator** — each task's UDF shipping runs the ordinary overlapped wire
   protocol over its site's channel, and tasks co-located on one site
   contend on that site's FIFO trunk pair,
3. merges the result streams through a
   :class:`~repro.core.execution.scatter.ScatterGatherOperator` under one
   canonical schema, with DISTINCT / ORDER BY / LIMIT applied once at the
   coordinator over the merged stream.

With ``segments > 1`` each shard runs its fragment in contiguous segments;
``migrate=True`` re-prices the remaining segments on every candidate
replica at each boundary (observed byte profile × per-site calibrated
bandwidth) and moves the rest of the shard off a slow or contended replica
when the :class:`~repro.distribution.planner.MigrationPolicy` says the
switch pays.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.adaptive.observer import RuntimeObserver
from repro.adaptive.store import StatisticsStore
from repro.client.registry import UdfRegistry
from repro.client.runtime import ClientRuntime
from repro.client.udf import UdfDefinition, UdfSite
from repro.core.execution.scatter import ScatterGatherOperator, ShardResult
from repro.core.strategies import ExecutionStrategy, StrategyConfig
from repro.network.simulator import Simulator
from repro.network.stats import ChannelStats, LinkStats
from repro.relational.catalog import Catalog
from repro.relational.expressions import ColumnRef
from repro.relational.operators import Distinct, Limit, Operator, Sort
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType, FLOAT
from repro.server.executor import Executor
from repro.server.metrics import ExecutionMetrics
from repro.server.planner import build_plan
from repro.server.result import QueryResult
from repro.sql.binder import Binder
from repro.sql.logical import BoundQuery
from repro.errors import PlanError
from repro.tenancy.baton import BatonDriver, BatonWorker
from repro.tenancy.driver import SharedExecutionContext
from repro.tenancy.fairqueue import shared_trunks
from repro.distribution.cluster import ClusterConfig
from repro.distribution.planner import (
    ClusterPlan,
    ClusterPlanner,
    MigrationPolicy,
    ShardTask,
)
from repro.distribution.sharding import ShardedTable, shard_table


class SiteExecutionContext(SharedExecutionContext):
    """A shared-simulator execution context pinned to one server site."""

    def __init__(self, *args, site: str = "", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.site = site


class _SiteRecorder:
    """Routes a run's observation into the store under its site key."""

    def __init__(self, store: StatisticsStore, site: str) -> None:
        self._store = store
        self._site = site

    def record(self, observation: Any) -> None:
        self._store.record(observation, site=self._site)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._store, name)


class _ScatterRun:
    """Per-execute shared state: the simulator, trunks, and knobs."""

    def __init__(
        self,
        engine: "DistributedDatabase",
        config: StrategyConfig,
        optimize: bool,
        segments: int,
        migrate: bool,
        policy: MigrationPolicy,
        observe: bool,
    ) -> None:
        self.engine = engine
        self.config = config
        self.optimize = optimize
        self.segments = max(1, segments)
        self.migrate = migrate
        self.policy = policy
        self.observe = observe
        self.simulator = Simulator()
        self.driver = BatonDriver(self.simulator, description="scatter-gather run")
        self.trunks: Dict[str, Tuple[Any, Any]] = {
            site.name: shared_trunks(
                self.simulator, discipline="fifo", name=f"site.{site.name}"
            )
            for site in engine.cluster.sites
        }
        self.contexts_created = 0

    def new_context(
        self, worker: BatonWorker, site: str, flow: str
    ) -> SiteExecutionContext:
        self.contexts_created += 1
        network = self.engine.cluster.site(site).network
        client = ClientRuntime(
            registry=self.engine.udfs,
            name=f"{site}.{flow}.client{self.contexts_created}",
        )
        down, up = self.trunks[site]
        channel = network.build_channel(
            self.simulator,
            name=f"{site}.{flow}.channel{self.contexts_created}",
            downlink_scheduler=down,
            uplink_scheduler=up,
            flow=flow,
        )
        return SiteExecutionContext(
            self.simulator, channel, client, network=network, worker=worker, site=site
        )


class _ShardWorker(BatonWorker):
    """Runs one shard task, segment by segment, migrating replicas if told to."""

    def __init__(self, run: _ScatterRun, task: ShardTask) -> None:
        super().__init__(run.driver, name=task.label)
        self.run = run
        self.task = task
        self.result: Optional[ShardResult] = None
        self.migrations = 0
        self.sites_visited: List[str] = [task.site]
        # Metric accumulators, folded into the coordinator's metrics.
        self.downlink = LinkStats(name=f"{task.label}.down")
        self.uplink = LinkStats(name=f"{task.label}.up")
        self.udf_invocations = 0
        self.client_cache_hits = 0
        self.client_compute_seconds = 0.0
        self.remote_operations = 0
        self.input_rows = 0

    # -- segment splitting -------------------------------------------------------------

    def _segment_queries(self) -> List[BoundQuery]:
        engine = self.run.engine
        fragment = self.task.fragment
        segments = self.run.segments
        if fragment is None or segments <= 1 or len(fragment) == 0:
            return [self.task.bound]
        rows = fragment.rows
        size = max(1, -(-len(rows) // segments))
        queries: List[BoundQuery] = []
        for start in range(0, len(rows), size):
            piece = Table(fragment.name, fragment.schema)
            for row in rows[start : start + size]:
                piece.insert(list(row))
            queries.append(engine.planner().bind_for_fragment(self.task.bound.sql, piece))
        return queries

    # -- the task body -----------------------------------------------------------------

    def run_body(self) -> None:
        engine = self.run.engine
        site = self.task.site
        gathered: List[Any] = []
        schema: Optional[Schema] = None
        segment_queries = self._segment_queries()
        for index, seg_bound in enumerate(segment_queries):
            context = self.run.new_context(self, site, flow=self.task.label)
            observer = None
            if self.run.observe:
                observer = RuntimeObserver(_SiteRecorder(engine.statistics, site))
            executor = Executor(
                context,
                server_functions=engine._server_functions(),
                observer=observer,
                session=None,
            )
            run_config = self.run.config
            udf_order = udf_strategies = table_order = None
            decision = self.task.decision
            if decision is not None:
                run_config = decision.strategy_config
                udf_order = decision.udf_order
                udf_strategies = decision.udf_strategies
                table_order = decision.table_order
            plan = build_plan(
                seg_bound,
                context,
                config=run_config,
                server_functions=engine._server_functions(),
                udf_order=udf_order,
                udf_strategies=udf_strategies,
                table_order=table_order,
                defer_output_shaping=True,
            )
            result = executor.execute_plan(
                plan, config=run_config, deliver_results=True
            )
            gathered.extend(result.rows)
            schema = result.schema
            self._fold_metrics(context, result.metrics)
            elapsed = context.elapsed_seconds
            downlink_bytes = context.downlink_bytes
            uplink_bytes = context.uplink_bytes
            messages = (
                context.channel_stats.downlink.message_count
                + context.channel_stats.uplink.message_count
            )
            context.channel.close()

            remaining = len(segment_queries) - index - 1
            if (
                self.run.migrate
                and remaining >= self.run.policy.min_segments_remaining
                and len(self.task.replicas) > 1
            ):
                site = self._maybe_migrate(
                    site, remaining, elapsed, downlink_bytes, uplink_bytes, messages
                )
        self.result = ShardResult(
            self.task.label,
            schema if schema is not None else Schema([]),
            gathered,
            site=site,
        )

    def _maybe_migrate(
        self,
        site: str,
        remaining: int,
        seg_elapsed: float,
        downlink_bytes: float,
        uplink_bytes: float,
        messages: float,
    ) -> str:
        """Re-price the remaining segments on every replica; move if it pays."""
        planner = self.run.engine.planner()
        current_estimate = seg_elapsed * remaining
        best_site, best_estimate = None, None
        for candidate in self.task.replicas:
            if candidate == site:
                continue
            per_segment = planner.site_estimate_seconds(
                candidate, downlink_bytes, uplink_bytes, messages
            )
            estimate = per_segment * remaining
            if best_estimate is None or estimate < best_estimate:
                best_site, best_estimate = candidate, estimate
        if best_site is not None and self.run.policy.should_migrate(
            current_estimate, best_estimate
        ):
            self.migrations += 1
            self.sites_visited.append(best_site)
            return best_site
        return site

    def _fold_metrics(self, context: SiteExecutionContext, metrics: ExecutionMetrics) -> None:
        stats = context.channel_stats
        self.downlink = self.downlink.merge(stats.downlink)
        self.uplink = self.uplink.merge(stats.uplink)
        self.udf_invocations += context.client.udf_invocations
        self.client_cache_hits += context.client.cache_hits
        self.client_compute_seconds += context.client.compute_seconds
        self.remote_operations += context.remote_operations
        self.input_rows += metrics.input_rows


class DistributedDatabase:
    """A cluster of server sites behind one logical SQL surface."""

    def __init__(
        self,
        cluster: ClusterConfig,
        default_config: Optional[StrategyConfig] = None,
        statistics: Optional[StatisticsStore] = None,
    ) -> None:
        self.cluster = cluster
        self.default_config = (
            default_config if default_config is not None else StrategyConfig()
        )
        self.statistics = statistics if statistics is not None else StatisticsStore()
        self.udfs = UdfRegistry()
        #: The logical catalog: every table, whole — what SQL binds against.
        self.catalog = Catalog()
        #: Unsharded tables (replicated in full to every site).
        self.unsharded = Catalog()
        #: Sharded tables, fragment sets keyed by lowered table name.
        self.sharded: Dict[str, ShardedTable] = {}

    # -- schema management --------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[Tuple[str, DataType]],
        rows: Optional[Sequence[Sequence[Any]]] = None,
        replace: bool = False,
    ) -> Table:
        """Create a logical table; shard it if the cluster declares a spec."""
        schema = Schema(Column(column_name, dtype) for column_name, dtype in columns)
        table = Table(name, schema, rows=rows)
        self.catalog.register(table, replace=replace)
        spec = self.cluster.spec_for(name)
        if spec is not None:
            self.sharded[name.lower()] = shard_table(table, spec)
            if self.unsharded.has_table(name):
                self.unsharded.drop(name)
        else:
            self.unsharded.register(table, replace=replace)
        return table

    def register_client_udf(self, name: str, function: Callable[..., Any], **kwargs) -> UdfDefinition:
        """Register a client-site UDF (same surface as :class:`Database`)."""
        kwargs.setdefault("result_dtype", FLOAT)
        kwargs.setdefault("cost_per_call_seconds", 0.0005)
        kwargs.setdefault("selectivity", 0.5)
        return self.udfs.register_function(name, function, site=UdfSite.CLIENT, **kwargs)

    def register_server_udf(self, name: str, function: Callable[..., Any], **kwargs) -> UdfDefinition:
        kwargs.setdefault("result_dtype", FLOAT)
        kwargs.setdefault("cost_per_call_seconds", 0.0001)
        kwargs.setdefault("selectivity", 0.5)
        return self.udfs.register_function(name, function, site=UdfSite.SERVER, **kwargs)

    # -- binding / planning ---------------------------------------------------------------

    def bind(self, sql: str) -> BoundQuery:
        return Binder(self.catalog, self.udfs).bind_sql(sql)

    def planner(self) -> ClusterPlanner:
        return ClusterPlanner(
            self.cluster,
            self.unsharded,
            self.sharded,
            self.udfs,
            statistics=self.statistics,
            default_config=self.default_config,
        )

    def _server_functions(self) -> Dict[str, Callable[..., Any]]:
        return self.udfs.callables(UdfSite.SERVER)

    def explain(self, query: Union[str, BoundQuery], **kwargs) -> str:
        bound = self.bind(query) if isinstance(query, str) else query
        plan = self.planner().plan(bound, **kwargs)
        return self.cluster.describe() + "\n" + plan.describe()

    # -- execution ------------------------------------------------------------------------

    def execute(
        self,
        query: Union[str, BoundQuery],
        config: Optional[StrategyConfig] = None,
        strategy: Optional[ExecutionStrategy] = None,
        optimize: bool = False,
        calibrated: bool = True,
        segments: int = 1,
        migrate: bool = False,
        migration_policy: Optional[MigrationPolicy] = None,
        observe: bool = True,
    ) -> QueryResult:
        """Execute ``query`` over the cluster and gather one merged answer.

        ``strategy``/``config``/``optimize`` mean what they do on
        :meth:`Database.execute` — applied per shard task (``optimize=True``
        lets each site's System-R decision pick its own UDF shipping
        strategy).  ``segments``/``migrate``/``migration_policy`` arm
        mid-query replica migration; ``calibrated=False`` prices replicas
        from configured bandwidths even when observations exist.
        """
        bound = self.bind(query) if isinstance(query, str) else query
        config = config if config is not None else self.default_config
        if strategy is not None:
            config = config.with_strategy(strategy)
        policy = migration_policy if migration_policy is not None else MigrationPolicy()
        if migration_policy is not None:
            migrate = True

        plan = self.planner().plan(
            bound, config=config, optimize=optimize, calibrated=calibrated
        )
        run = _ScatterRun(
            self,
            config=config,
            optimize=optimize,
            segments=segments,
            migrate=migrate,
            policy=policy,
            observe=observe,
        )
        workers = [_ShardWorker(run, task) for task in plan.tasks]

        def runner(tasks: Sequence[ShardTask]) -> List[ShardResult]:
            run.driver.run(workers)
            return [worker.result for worker in workers if worker.result is not None]

        schema = self._canonical_schema(plan, config)
        scatter = ScatterGatherOperator(
            schema,
            plan.tasks,
            runner,
            label=plan.sharded_table or "unsharded",
        )
        root = self._shape_output(scatter, bound)
        rows = root.run()
        metrics = self._collect_metrics(run, workers, plan, root, rows, config)
        return QueryResult(
            schema=root.output_schema(),
            rows=rows,
            metrics=metrics,
            plan_text=plan.describe() + "\n" + root.explain(),
        )

    # -- helpers --------------------------------------------------------------------------

    def _canonical_schema(self, plan: ClusterPlan, config: StrategyConfig) -> Schema:
        """The per-shard deferred plan's output schema, built without running.

        Plan construction is pure operator wiring, so a throwaway context on
        the task's site suffices — the exact schema (names *and* types) every
        shard stream must match falls out of the same code path the shards
        themselves use.
        """
        task = plan.tasks[0]
        from repro.core.execution.context import RemoteExecutionContext

        context = RemoteExecutionContext.create(
            self.cluster.site(task.site).network,
            client=ClientRuntime(registry=self.udfs, name="schema-probe"),
        )
        run_config = config
        udf_order = udf_strategies = table_order = None
        if task.decision is not None:
            run_config = task.decision.strategy_config
            udf_order = task.decision.udf_order
            udf_strategies = task.decision.udf_strategies
            table_order = task.decision.table_order
        probe = build_plan(
            task.bound,
            context,
            config=run_config,
            server_functions=self._server_functions(),
            udf_order=udf_order,
            udf_strategies=udf_strategies,
            table_order=table_order,
            defer_output_shaping=True,
        )
        return probe.root.output_schema()

    def _shape_output(self, scatter: ScatterGatherOperator, bound: BoundQuery) -> Operator:
        """Coordinator-side DISTINCT / ORDER BY / LIMIT over the merged stream."""
        from repro.core.execution.rewrite import replace_udf_calls_with_columns

        plan: Operator = scatter
        mapping = {
            call.udf.name.lower(): call.result_column_name
            for call in bound.client_udf_calls
        }
        if bound.distinct:
            plan = Distinct(plan)
        if bound.order_by:
            sort_columns: List[str] = []
            for expression, _descending in bound.order_by:
                rewritten = replace_udf_calls_with_columns(expression, mapping)
                if not isinstance(rewritten, ColumnRef):
                    raise PlanError("ORDER BY only supports plain column references")
                name = rewritten.name
                if not plan.output_schema().has_column(name):
                    bare = name.partition(".")[2] if "." in name else name
                    if plan.output_schema().has_column(bare):
                        name = bare
                    else:
                        raise PlanError(f"ORDER BY column {name!r} is not in the output")
                sort_columns.append(name)
            descending_flags = {flag for _, flag in bound.order_by}
            plan = Sort(plan, sort_columns, descending=descending_flags == {True})
        if bound.limit is not None:
            plan = Limit(plan, bound.limit, bound.offset)
        return plan

    def _collect_metrics(
        self,
        run: _ScatterRun,
        workers: Sequence[_ShardWorker],
        plan: ClusterPlan,
        root: Operator,
        rows: Sequence[Any],
        config: StrategyConfig,
    ) -> ExecutionMetrics:
        downlink = LinkStats(name="scatter.down")
        uplink = LinkStats(name="scatter.up")
        udf_invocations = cache_hits = remote_operations = input_rows = 0
        compute_seconds = 0.0
        migrations = 0
        for worker in workers:
            downlink = downlink.merge(worker.downlink)
            uplink = uplink.merge(worker.uplink)
            udf_invocations += worker.udf_invocations
            cache_hits += worker.client_cache_hits
            compute_seconds += worker.client_compute_seconds
            remote_operations += worker.remote_operations
            input_rows += worker.input_rows
            migrations += worker.migrations
        return ExecutionMetrics.from_run(
            elapsed_seconds=run.simulator.now,
            channel_stats=ChannelStats(downlink=downlink, uplink=uplink),
            udf_invocations=udf_invocations,
            client_cache_hits=cache_hits,
            client_compute_seconds=compute_seconds,
            rows_returned=len(rows),
            input_rows=input_rows,
            remote_operations=remote_operations,
            strategy=config.strategy,
            plan_migrations=migrations,
            plan_description=plan.describe() + "\n" + root.explain(),
        )

    def __repr__(self) -> str:
        return (
            f"DistributedDatabase(sites={self.cluster.site_names}, "
            f"tables={self.catalog.table_names()}, sharded={sorted(self.sharded)})"
        )
