"""Scatter-gather distribution: sharded/replicated server sites.

The paper's client-site UDF machinery assumes one server behind one link.
This package scales it out horizontally: a :class:`ClusterConfig` of N
server sites holds the shards and replicas declared by
:class:`ShardingSpec`s, the :class:`ClusterPlanner` prices every (shard,
replica) pair with the single-site System-R optimizer against per-site
calibrated bandwidth and picks the makespan-minimising assignment, and the
:class:`DistributedDatabase` fans the shard tasks out over the existing
overlapped wire protocol — one baton-driven worker per task on one shared
simulator — then merges the result streams through a
:class:`~repro.core.execution.scatter.ScatterGatherOperator`.
"""

from repro.distribution.sharding import (
    ShardedTable,
    ShardingSpec,
    hash_shard_of,
    range_boundaries_from_data,
    range_shard_of,
    shard_table,
)
from repro.distribution.cluster import ClusterConfig, SiteConfig
from repro.distribution.planner import (
    ClusterPlan,
    ClusterPlanner,
    MigrationPolicy,
    ShardTask,
)
from repro.distribution.engine import DistributedDatabase, SiteExecutionContext

__all__ = [
    "ShardingSpec",
    "ShardedTable",
    "shard_table",
    "hash_shard_of",
    "range_shard_of",
    "range_boundaries_from_data",
    "SiteConfig",
    "ClusterConfig",
    "ClusterPlanner",
    "ClusterPlan",
    "ShardTask",
    "MigrationPolicy",
    "DistributedDatabase",
    "SiteExecutionContext",
]
