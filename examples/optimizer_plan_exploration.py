"""Exploring the optimizer's plan space for multi-UDF queries (Section 5).

The Figure 11 query joins StockQuotes with broker Estimations and filters on
a client-site rating UDF; Figure 13 adds a second client-site UDF
(``Volatility``) that shares an argument column with the first.  This example
prints the plans the extended System-R optimizer keeps (thanks to the site
and column-location physical properties), the baselines' estimates, and the
executed runtime of the chosen plan.

Run with::

    python examples/optimizer_plan_exploration.py
"""

from __future__ import annotations

from repro import ExecutionStrategy, NetworkConfig, StrategyConfig
from repro.core.optimizer import Optimizer
from repro.workloads.stock import StockWorkload


def explore(db, query: str, title: str) -> None:
    print(f"\n=== {title} ===")
    print(query)
    bound = db.bind(query)
    optimizer = Optimizer(db.network)

    plans = optimizer.plan_space(bound)
    print(f"\n{len(plans)} complete plans survive pruning; the three cheapest:")
    for plan in plans[:3]:
        print(plan.describe())
        print()

    decision = optimizer.optimize(bound, include_baselines=True)
    print(decision.describe())

    optimized = db.execute(bound, optimize=True)
    naive = db.execute(bound, config=StrategyConfig.naive())
    print(
        f"\nexecuted: optimizer plan {optimized.metrics.elapsed_seconds:.2f}s vs. "
        f"naive tuple-at-a-time {naive.metrics.elapsed_seconds:.2f}s "
        f"({naive.metrics.elapsed_seconds / max(optimized.metrics.elapsed_seconds, 1e-9):.1f}x slower)"
    )
    assert optimized.row_set() == naive.row_set()


def main() -> None:
    workload = StockWorkload(company_count=40, network=NetworkConfig.paper_symmetric())
    db = workload.build()
    explore(db, StockWorkload.figure11_query(), "Figure 11: one client-site UDF and a join")
    explore(db, StockWorkload.figure13_query(), "Figure 13: a second UDF sharing an argument column")


if __name__ == "__main__":
    main()
