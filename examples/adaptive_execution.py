"""Adaptive execution: observe → calibrate → adapt, end to end.

A client registers a UDF with a badly mis-declared cost on a network whose
real bandwidth the server has never measured.  The first adaptive query
hill-climbs its batch size on observed throughput while it runs; the runtime
observer measures the links and the UDF; and the second query — both its
adaptive controller and the cost-based optimizer — starts from the measured
reality instead of the configured fiction.

Run with::

    python examples/adaptive_execution.py
"""

from __future__ import annotations

from repro import Database, NetworkConfig, StrategyConfig
from repro.relational.types import FLOAT, INTEGER
from repro.workloads.drift import fading_uplink_scenario


def build_database(network: NetworkConfig) -> Database:
    db = Database(network=network)
    db.create_table(
        "Readings",
        [("Id", INTEGER), ("Value", FLOAT)],
        rows=[[i, float(i)] for i in range(300)],
    )
    # Declared at 0.1 ms/call, but the client actually needs 2 ms/call.
    db.register_client_udf(
        "Score",
        lambda value: value * 2.0,
        cost_per_call_seconds=0.0001,
        actual_cost_per_call_seconds=0.002,
        selectivity=0.9,
    )
    return db


QUERY = "SELECT R.Id FROM Readings R WHERE Score(R.Value) > 100"


def main() -> None:
    print("=== Stable network: convergence with no prior tuning ===")
    db = build_database(NetworkConfig.paper_asymmetric(asymmetry=100.0))

    first = db.execute(QUERY, config=StrategyConfig.semi_join(), adaptive=True)
    print(f"query 1 (cold):  {first.metrics.elapsed_seconds:.3f}s  "
          f"batch trace {first.metrics.batch_size_trace}")

    second = db.execute(QUERY, config=StrategyConfig.semi_join(), adaptive=True)
    print(f"query 2 (warm):  {second.metrics.elapsed_seconds:.3f}s  "
          f"batch trace {second.metrics.batch_size_trace}")

    print("\nWhat the runtime learned:")
    print(db.statistics.summary())

    print("\nOptimizer planning with calibrated statistics:")
    print(db.explain(QUERY, optimize=True, calibrated=True).splitlines()[0])

    print("\n=== Drifting network: the uplink fades 10x mid-query ===")
    drift = fading_uplink_scenario(drift_at_seconds=0.5, fade_factor=0.1)
    db = build_database(drift)
    static = db.execute(QUERY, config=StrategyConfig.semi_join(), observe=False)
    adaptive = db.execute(QUERY, config=StrategyConfig.semi_join(), adaptive=True)
    print(f"static default (batch 1): {static.metrics.elapsed_seconds:.3f}s")
    print(f"adaptive:                 {adaptive.metrics.elapsed_seconds:.3f}s  "
          f"batch trace {adaptive.metrics.batch_size_trace}")
    speedup = static.metrics.elapsed_seconds / adaptive.metrics.elapsed_seconds
    print(f"adaptive speedup under drift: {speedup:.1f}x")


if __name__ == "__main__":
    main()
