"""Overlapped UDF shipping: hiding a slow link behind the in-flight window.

Every execution strategy ships its work to the client as a stream of request
batches.  On a high-latency link the difference between *synchronous*
shipping (one batch on the wire at a time — the paper's naive strategy) and
*overlapped* shipping (up to W batches outstanding while the server keeps
producing) is the whole game: the wire carries exactly the same messages and
bytes either way, but the overlapped run pays the round-trip latency once
per window instead of once per batch.

This example runs the same query three ways on a 200 ms link:

1. synchronously (``overlap_window=1``),
2. with a fixed window of 6,
3. adaptively (``adaptive=True``) — the ``OverlapWindowController``
   hill-climbs the window on observed rows/second while the query runs,
   alongside the batch-size controller.

Run with::

    python examples/overlapped_execution.py
"""

from __future__ import annotations

from repro import Database, NetworkConfig, StrategyConfig
from repro.relational.types import FLOAT, INTEGER


def build_database() -> Database:
    # 1 MB/s both ways, but 200 ms one-way latency: a long fat pipe where
    # synchronous shipping wastes almost all of every round trip.
    network = NetworkConfig.symmetric(1_000_000.0, latency=0.2, name="high-latency")
    db = Database(network=network)
    db.create_table(
        "Readings",
        [("Id", INTEGER), ("Value", FLOAT)],
        rows=[[i, float(i)] for i in range(240)],
    )
    db.register_client_udf("Score", lambda value: value * 2.0, selectivity=0.5)
    return db


QUERY = "SELECT R.Id FROM Readings R WHERE Score(R.Value) > 120"


def main() -> None:
    config = StrategyConfig.naive(batch_size=8)

    print("=== Synchronous shipping (window 1 — the paper's naive wire) ===")
    db = build_database()
    synchronous = db.execute(QUERY, config=config, overlap_window=1)
    print(f"elapsed {synchronous.metrics.elapsed_seconds:.3f}s | "
          f"{synchronous.metrics.downlink_messages} downlink msgs | "
          f"peak in-flight {synchronous.metrics.peak_in_flight_batches}")

    print("\n=== Overlapped shipping (window 6) ===")
    db = build_database()
    overlapped = db.execute(QUERY, config=config, overlap_window=6)
    print(f"elapsed {overlapped.metrics.elapsed_seconds:.3f}s | "
          f"{overlapped.metrics.downlink_messages} downlink msgs | "
          f"peak in-flight {overlapped.metrics.peak_in_flight_batches} | "
          f"sender stalled {overlapped.metrics.send_stall_seconds:.3f}s")

    print("\n=== Adaptive window (the controller finds W while running) ===")
    db = build_database()
    adaptive = db.execute(QUERY, config=config, adaptive=True)
    print(f"elapsed {adaptive.metrics.elapsed_seconds:.3f}s | "
          f"peak in-flight {adaptive.metrics.peak_in_flight_batches} | "
          f"window ended at {adaptive.metrics.overlap_window}")

    print("\nSame wire either way:")
    print(f"  synchronous: {synchronous.metrics.downlink_bytes} B down, "
          f"{synchronous.metrics.uplink_bytes} B up")
    print(f"  overlapped:  {overlapped.metrics.downlink_bytes} B down, "
          f"{overlapped.metrics.uplink_bytes} B up")
    speedup = synchronous.metrics.elapsed_seconds / overlapped.metrics.elapsed_seconds
    print(f"\nOverlap hides the latency: {speedup:.1f}x faster, identical bytes.")

    assert synchronous.row_set() == overlapped.row_set() == adaptive.row_set()


if __name__ == "__main__":
    main()
