"""Quickstart: run a query with a client-site UDF under every execution strategy.

This is the paper's motivating scenario (Figure 1): a stock-market server,
an investor whose proprietary ``ClientAnalysis`` UDF must run at the client,
and a query that mixes a server-evaluable predicate with a client-site one::

    SELECT S.Name, S.Report
    FROM   StockQuotes S
    WHERE  S.Change / S.Close > 0.2 AND ClientAnalysis(S.Quotes) > 500

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ExecutionStrategy, NetworkConfig, StrategyConfig
from repro.workloads.stock import StockWorkload


def main() -> None:
    # Build the stock-market database over the paper's modem-class link.
    workload = StockWorkload(company_count=40, network=NetworkConfig.paper_symmetric())
    db = workload.build()

    query = StockWorkload.figure1_query()
    print("Query:")
    print(" ", query)
    print()

    # Execute under each client-site UDF strategy and compare.
    results = db.compare_strategies(query)
    print(f"{'strategy':<18} {'rows':>5} {'time (sim s)':>13} {'downlink B':>12} {'uplink B':>10}")
    for strategy in ExecutionStrategy:
        metrics = results[strategy].metrics
        print(
            f"{strategy.value:<18} {metrics.rows_returned:>5} "
            f"{metrics.elapsed_seconds:>13.2f} {metrics.downlink_bytes:>12} {metrics.uplink_bytes:>10}"
        )

    # All strategies return the same answer; show it once.
    answer = results[ExecutionStrategy.SEMI_JOIN]
    print("\nAnswer (companies with a 20%+ uptick that pass the client's analysis):")
    print(answer.format_table(max_rows=10))

    # Let the optimizer pick the plan instead of fixing a strategy by hand.
    optimized = db.execute(query, optimize=True)
    print(
        f"\nOptimizer-chosen plan: {optimized.metrics.strategy.value}, "
        f"{optimized.metrics.elapsed_seconds:.2f} simulated seconds"
    )
    print("\nPlan chosen by the extended System-R optimizer:")
    print(db.explain(query, optimize=True))


if __name__ == "__main__":
    main()
