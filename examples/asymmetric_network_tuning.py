"""Choosing an execution strategy on asymmetric networks (Sections 3.2 and 4.3).

The investor of the quickstart now connects over a cable-modem style link:
the downlink is ~100x faster than the uplink.  This example shows how the
bandwidth cost model predicts the right strategy for different UDF result
sizes and predicate selectivities, and verifies the predictions against the
network simulator.

Run with::

    python examples/asymmetric_network_tuning.py
"""

from __future__ import annotations

from repro import CostModel, CostParameters, NetworkConfig, StrategyConfig
from repro.core.concurrency import analyze_pipeline
from repro.workloads.experiments import run_workload_point
from repro.workloads.synthetic import SyntheticWorkload


def compare(network: NetworkConfig, result_bytes: int, selectivity: float) -> None:
    workload = SyntheticWorkload(
        row_count=80,
        input_record_bytes=2000,
        argument_fraction=0.6,
        result_bytes=result_bytes,
        selectivity=selectivity,
    )
    parameters = CostParameters.paper_experiment(
        input_record_bytes=workload.input_record_bytes,
        argument_fraction=workload.argument_fraction,
        result_bytes=result_bytes,
        selectivity=selectivity,
        asymmetry=network.asymmetry,
    )
    model = CostModel(parameters)
    semi = run_workload_point(workload, network, StrategyConfig.semi_join())
    csj = run_workload_point(workload, network, StrategyConfig.client_site_join())
    measured_winner = "client_site_join" if csj.elapsed_seconds < semi.elapsed_seconds else "semi_join"
    print(
        f"  R={result_bytes:>5}B  S={selectivity:<4}  "
        f"predicted ratio {model.relative_time():>6.2f}  "
        f"measured {csj.elapsed_seconds / semi.elapsed_seconds:>6.2f}  "
        f"predicted winner {model.preferred_strategy().value:<16}  measured winner {measured_winner}"
    )


def main() -> None:
    for network in (NetworkConfig.paper_symmetric(), NetworkConfig.paper_asymmetric(asymmetry=100.0)):
        print(f"\nNetwork: {network}")
        for result_bytes in (100, 1000, 5000):
            for selectivity in (0.1, 0.5, 1.0):
                compare(network, result_bytes, selectivity)

    # The B·T analysis: how deep should the semi-join pipeline be?
    print("\nPipeline concurrency analysis (semi-join buffer sizing):")
    for network in (NetworkConfig.paper_symmetric(), NetworkConfig.lan()):
        analysis = analyze_pipeline(
            network, request_payload_bytes=1200, response_payload_bytes=1000,
            client_seconds_per_tuple=0.002,
        )
        print(
            f"  {network.name:<18} bottleneck={analysis.bottleneck_stage:<9} "
            f"round-trip={analysis.round_trip_seconds:.3f}s "
            f"recommended concurrency factor={analysis.recommended_factor()}"
        )


if __name__ == "__main__":
    main()
