"""Multi-tenant execution: many client sessions on one shared trunk.

Sixteen interactive point-query sessions share a 200 KB/s connection with
two bulk client-site-join sessions, all on one discrete-event simulation.
The same traffic runs twice:

* a **FIFO** trunk with unbounded admission — whoever enqueues first
  transmits first, so every point query waits behind the bulk backlog;
* **deficit-round-robin fair queueing** plus a bounded shortest-job-first
  **admission scheduler** — each session's flow holds its byte share, and
  the server stops over-committing its executor slots.

The queries, the bytes, and the throughput are identical; only *whose*
bytes wait changes — which is exactly the interactive tail latency.

Run with::

    python examples/multitenant.py
"""

from __future__ import annotations

from repro.tenancy import MultiTenantEngine, percentile
from repro.workloads.multitenant import (
    bulk_session,
    make_tenant_database,
    point_sessions,
)

POINT_SESSIONS = 16
BULK_SESSIONS = 2


def build_workloads():
    workloads = point_sessions(POINT_SESSIONS, queries_per_session=3, seed=7)
    for index in range(BULK_SESSIONS):
        workloads.append(
            bulk_session(tenant_id=f"bulk{index}", queries=2, seed=9000 + index)
        )
    return workloads


def point_p99(report):
    latencies = []
    for tenant, values in report.tenant_latencies().items():
        if tenant.startswith("point"):
            latencies.extend(values)
    return percentile(sorted(latencies), 0.99)


def run(title, **engine_options):
    engine = MultiTenantEngine(
        make_tenant_database(bulk_series=512), **engine_options
    )
    report = engine.run(build_workloads())
    print(f"\n=== {title} ===")
    print(report.summary())
    print(f"interactive p99:    {point_p99(report):.3f}s")
    print(f"fairness (Jain):    {report.fairness_index:.3f}")
    if engine.slots.capacity is not None:
        print(
            f"admission:          peak queue {report.peak_admission_queue}, "
            f"mean wait {report.mean_admission_wait_seconds:.3f}s, "
            f"peak slots in use {engine.slots.peak_in_use}"
        )
    return report


def main() -> None:
    fifo = run("FIFO trunk, unbounded admission", fair_queueing="fifo")
    fair = run(
        "DRR fair queueing + SJF admission",
        fair_queueing="drr",
        quantum_bytes=1024,
        executor_slots=POINT_SESSIONS,
        admission_policy="sjf",
    )

    improvement = point_p99(fifo) / point_p99(fair)
    print(f"\ninteractive p99 improvement: {improvement:.2f}x at equal throughput")

    # Per-tenant trunk attribution comes straight from the per-flow counters.
    print("\ntrunk bytes by tenant (top 5):")
    by_tenant = sorted(
        fair.trunk_flow_bytes.items(), key=lambda item: -item[1]
    )[:5]
    for flow, transferred in by_tenant:
        print(f"  {flow:>12}: {transferred:>9,} B")


if __name__ == "__main__":
    main()
