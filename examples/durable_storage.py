"""Durable storage: a paged database that remembers its data *and* its tuning.

Passing ``storage_dir=...`` to :class:`~repro.server.engine.Database` swaps
the in-memory tables for a paged heap under a buffer manager and persists
three things across restarts:

* the rows themselves (slotted pages in ``<table>.tbl`` heap files),
* the schema and per-table statistics catalog (``catalog.json``), and
* everything the adaptive runtime learned about the workload
  (``statistics.json`` — calibrated UDF costs, observed selectivities,
  converged batch sizes), keyed by a workload fingerprint so a changed
  schema starts cold instead of planning from stale numbers.

Run with::

    python examples/durable_storage.py
"""

from __future__ import annotations

import tempfile

from repro import NetworkConfig
from repro.relational.types import FLOAT, INTEGER, STRING
from repro.server.engine import Database

NETWORK = NetworkConfig.paper_asymmetric(asymmetry=100.0)

SQL = "SELECT I.Name, I.Price FROM Items I WHERE Analyze(I.Price) > 40"


def open_database(directory: str) -> Database:
    """Open (or re-open) the example database over ``directory``."""
    db = Database(network=NETWORK, storage_dir=directory)
    if "Items" not in db.catalog.table_names():
        db.create_table(
            "Items",
            [("Id", INTEGER), ("Price", FLOAT), ("Name", STRING)],
            rows=[(i, float(i % 50), f"item{i % 7}") for i in range(200)],
        )
    # The declared cost is 40x too cheap — only observation corrects it,
    # and only persistence carries the correction across the restart.
    db.register_client_udf(
        "Analyze",
        lambda price: price * 2.0,
        cost_per_call_seconds=0.0001,
        actual_cost_per_call_seconds=0.004,
        selectivity=0.5,
    )
    return db


def main() -> None:
    with tempfile.TemporaryDirectory() as directory:
        # --- first session: create, query, learn -------------------------
        db = open_database(directory)
        first = db.execute(SQL, optimize=True, adaptive=True)
        second = db.execute(SQL, optimize=True, adaptive=True)
        print("first session:")
        print(f"  cold query:  {first.metrics.elapsed_seconds:8.3f} sim s")
        print(f"  next query:  {second.metrics.elapsed_seconds:8.3f} sim s")
        print(f"  buffer pool: {first.buffer_hit_ratio:.0%} hits, "
              f"{first.buffer_evictions} evictions")
        print(f"  calibrated Analyze cost: "
              f"{db.statistics.udf_cost('Analyze', 0.0) * 1000:.2f} ms/call")
        db.close()  # flushes pages, saves catalog.json + statistics.json

        # --- second session: everything comes back -----------------------
        restarted = open_database(directory)
        warm = restarted.execute(SQL, optimize=True, adaptive=True)
        print("\nafter restart (same directory):")
        print(f"  tables recovered: {restarted.catalog.table_names()}")
        print(f"  queries remembered: {restarted.statistics.queries_observed}")
        print(f"  warm query:  {warm.metrics.elapsed_seconds:8.3f} sim s "
              f"(cold was {first.metrics.elapsed_seconds:.3f})")
        assert warm.row_set() == first.row_set()

        # The statistics catalog behind the optimizer's estimates.
        stats = restarted.catalog.table("Items").statistics
        print(f"  catalog: {stats.row_count} rows, "
              f"{stats.column('Name').distinct_count} distinct names, "
              f"{stats.column('Price').distinct_count} distinct prices")
        restarted.close()


if __name__ == "__main__":
    main()
