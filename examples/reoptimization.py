"""Mid-query re-optimization: migrating the plan *shape*, not just a strategy.

The System-R enumerator commits to a UDF application order from *declared*
selectivities.  Here both declarations lie: ``ProbeA`` declares itself very
selective (so the enumerator applies it first) but actually keeps 95% of the
rows, while ``ProbeB`` declares itself unselective but actually filters 95%.
The committed plan shape therefore runs the wrong filter first for nearly the
whole query.

With ``reoptimize=True`` the whole UDF chain runs inside one plan-migration
operator: at segment boundaries a ``ReOptimizer`` snapshots what the run has
observed — per-predicate selectivities (keyed by canonical predicate
identity, so they survive reordering), measured per-UDF cost, effective
bandwidths — re-enters the System-R enumerator over the *remaining* input,
and, under hysteresis plus a re-plan budget, migrates the tail to the
reordered plan.  The result set is identical; the time lands near the oracle
static plan.

Run with::

    python examples/reoptimization.py
"""

from __future__ import annotations

from repro.core.strategies import StrategyConfig
from repro.workloads.misestimation import MisorderedUdfScenario


def main() -> None:
    scenario = MisorderedUdfScenario()
    print(scenario.describe())
    print()

    # The committed plan: the enumerator's choice from the declarations.
    committed = scenario.build_database().execute(scenario.sql, optimize=True)
    print(f"committed (wrong order)   {committed.metrics.elapsed_seconds:8.2f}s")

    # The oracle static plan: the right order, known only with hindsight.
    oracle = scenario.build_database().execute(
        scenario.sql,
        udf_order=list(scenario.oracle_udf_order),
        config=StrategyConfig.semi_join(batch_size=committed.metrics.batch_size or 1),
    )
    print(f"oracle static order       {oracle.metrics.elapsed_seconds:8.2f}s")

    # Mid-query re-optimization: starts under the committed shape, observes
    # the contradiction, re-enters the enumerator, migrates the tail.
    reopt = scenario.build_database().execute(
        scenario.sql, reoptimize=True, replan_policy=scenario.replan_policy()
    )
    orders = " => ".join(
        "[" + ", ".join(order) + "]" for order in (reopt.metrics.udf_orders_used or ())
    )
    print(f"mid-query re-optimized    {reopt.metrics.elapsed_seconds:8.2f}s   {orders}")
    print()
    print(
        f"plan migrations: {reopt.metrics.plan_migrations} "
        f"(in {reopt.metrics.replan_attempts} boundary decisions)"
    )
    print(
        f"vs committed (wrong) shape: "
        f"{committed.metrics.elapsed_seconds / reopt.metrics.elapsed_seconds:.1f}x faster"
    )
    print(
        f"vs oracle static plan:      "
        f"{reopt.metrics.elapsed_seconds / oracle.metrics.elapsed_seconds:.2f}x its time"
    )
    print(f"identical results: {reopt.row_set() == committed.row_set()}")

    # The observed selectivities landed in the statistics store under
    # canonical predicate-identity keys: a repeat query plans calibrated.
    db = scenario.build_database()
    db.execute(scenario.sql, reoptimize=True, replan_policy=scenario.replan_policy())
    print()
    print(db.statistics.summary())


if __name__ == "__main__":
    main()
