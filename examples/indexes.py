"""Secondary indexes: the optimizer swaps a heap scan for a B-tree probe.

A durable table starts as a heap file the executor can only scan front to
back.  This example walks the full access-path story on one table:

1. run a selective query with nothing but the heap — every page is read;
2. ``db.analyze(...)`` refreshes the catalog histograms so the optimizer
   can *see* that the predicate is selective;
3. ``CREATE INDEX`` builds a paged B-tree over the filter column;
4. the same query, re-optimized, probes the index and touches a handful of
   pages — chosen purely from catalog statistics, no hints;
5. an unselective query on the same table keeps the sequential scan
   (Yao's formula: it would touch nearly every heap page anyway).

Index access paths only compete when block accesses cost something:
``CostSettings(block_access_seconds=...)`` opts in (the default of 0.0
keeps plans identical to the index-free engine).

Run with::

    python examples/indexes.py
"""

from __future__ import annotations

import tempfile

from repro import NetworkConfig
from repro.core.optimizer import CostSettings
from repro.relational.types import FLOAT, INTEGER, STRING
from repro.server.engine import Database

NETWORK = NetworkConfig.symmetric(2_000_000.0, latency=0.0005, name="indexes")

SELECTIVE_SQL = "SELECT Q.Id, Q.Name FROM Quotes Q WHERE Q.Price < 1.0"
UNSELECTIVE_SQL = "SELECT Q.Id FROM Quotes Q WHERE Q.Price < 450.0"


def report(label: str, result) -> None:
    metrics = result.metrics
    print(
        f"  {label:<28} rows={len(result.rows):>4}  "
        f"pages={metrics.buffer_accesses:>3}  "
        f"index lookups={metrics.index_lookups}  "
        f"index pages={metrics.index_pages_read}"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as directory:
        db = Database(
            network=NETWORK,
            storage_dir=directory,
            cost_settings=CostSettings(block_access_seconds=0.005),
        )
        db.create_table(
            "Quotes",
            [("Id", INTEGER), ("Price", FLOAT), ("Name", STRING)],
            rows=[(i, float(i) / 4.0, f"name{i % 50}") for i in range(4000)],
        )

        print("1) heap scan only (no index, no fresh statistics):")
        report("seq scan", db.execute(SELECTIVE_SQL, deliver_results=True))

        print("2) ANALYZE refreshes the catalog histograms,")
        db.analyze("Quotes")
        print("3) CREATE INDEX builds the B-tree:")
        db.execute("CREATE INDEX quotes_price_idx ON Quotes (Price)")
        print(f"   indexes now: {db.index_names()}")

        print("4) the optimizer picks the index path from statistics alone:")
        indexed = db.execute(SELECTIVE_SQL, optimize=True, deliver_results=True)
        report("index scan", indexed)
        print("   plan:")
        for line in indexed.plan_text.splitlines():
            print(f"     {line}")

        print("5) the unselective predicate keeps the sequential scan:")
        report("seq scan (45% match)",
               db.execute(UNSELECTIVE_SQL, optimize=True, deliver_results=True))

        db.close()


if __name__ == "__main__":
    main()
