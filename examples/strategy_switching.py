"""Mid-query strategy switching: recovering from a misestimated selectivity.

The optimizer's semi-join vs. client-site-join choice hinges on the UDF's
predicate selectivity — which it takes on faith from the UDF's declaration.
Here the declaration is wrong by 9x, so the committed plan is the wrong
strategy for nearly the whole query.  With ``switch_strategies=True`` the
executor runs the input in segments, observes the *true* selectivity in the
first probe segment, re-costs the remaining rows under every strategy, and
hands the unprocessed tail to the right one — beating the committed plan and
landing near the oracle static choice.

Run with::

    python examples/strategy_switching.py
"""

from __future__ import annotations

from repro.core.strategies import ExecutionStrategy, StrategyConfig
from repro.workloads.experiments import run_workload_point
from repro.workloads.misestimation import overestimated_selectivity_scenario


def main() -> None:
    scenario = overestimated_selectivity_scenario()
    print(scenario.describe())
    print()

    statics = {}
    for strategy in ExecutionStrategy:
        point = run_workload_point(
            scenario.workload(),
            scenario.network,
            StrategyConfig(strategy=strategy, batch_size=8),
        )
        statics[strategy] = point
        print(f"static {strategy.value:18s} {point.elapsed_seconds:8.2f}s")

    switched = run_workload_point(
        scenario.workload(),
        scenario.network,
        StrategyConfig(
            strategy=scenario.committed_strategy, batch_size=8
        ).with_switch_policy(scenario.switch_policy()),
    )
    committed = statics[scenario.committed_strategy]
    oracle = min(statics.values(), key=lambda point: point.elapsed_seconds)
    path = " -> ".join(strategy.value for strategy in switched.strategies_used)
    print(f"adaptive switched     {switched.elapsed_seconds:8.2f}s   ({path})")
    print()
    print(f"vs committed (wrong) plan: {committed.elapsed_seconds / switched.elapsed_seconds:.1f}x faster")
    print(f"vs oracle static choice:   {switched.elapsed_seconds / oracle.elapsed_seconds:.2f}x its time")
    print(f"identical results: {switched.result_rows == committed.result_rows}")


if __name__ == "__main__":
    main()
