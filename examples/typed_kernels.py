"""Typed column buffers and vectorized kernels: fast, and invisible on the wire.

Two demonstrations in one script:

1. **Kernel speed.**  A predicate compiled with
   :func:`repro.relational.kernels.compile_filter` evaluates a whole batch
   in one NumPy pass; against the scalar row-at-a-time path the speedup is
   one to two orders of magnitude on large batches.

2. **Wire-trace invariance.**  Typed buffers are a *storage* change, not a
   protocol change: running the same UDF query with typed buffers enabled
   and with the fully-scalar fallback (``scalar_fallback()``) produces the
   identical message counts, byte totals, and result rows under every
   execution strategy.

Run with::

    python examples/typed_kernels.py
"""

from __future__ import annotations

import time

from repro import NetworkConfig, StrategyConfig
from repro.client.registry import UdfRegistry
from repro.client.runtime import ClientRuntime
from repro.core.execution.context import RemoteExecutionContext
from repro.core.execution.rewrite import build_operator
from repro.relational.columns import HAVE_NUMPY, scalar_fallback
from repro.relational.expressions import BooleanOp, ColumnRef, Comparison, Literal
from repro.relational.kernels import compile_filter
from repro.relational.operators import TableScan
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.tuples import RowBatch
from repro.relational.types import FLOAT, INTEGER


def kernel_speed() -> None:
    rows = 200_000
    schema = Schema.of(("key", INTEGER), ("value", FLOAT), table="t")
    data = [(index % 1000, float(index % 513) * 0.25) for index in range(rows)]
    predicate = BooleanOp(
        "AND",
        [
            Comparison("<", ColumnRef("key"), Literal(700)),
            Comparison(">=", ColumnRef("value"), Literal(25.0)),
        ],
    )

    bound = predicate.bind(schema)
    start = time.perf_counter()
    scalar_result = [row for row in data if bound(row)]
    scalar_seconds = time.perf_counter() - start

    print(f"Filtering {rows} rows with: {predicate}")
    print(f"  scalar path: {scalar_seconds * 1e3:8.2f} ms ({len(scalar_result)} rows kept)")

    if not HAVE_NUMPY:
        print("  (NumPy not installed — vectorized kernels unavailable; the")
        print("   array-backed typed buffers still cut memory and sizing cost.)")
        return

    batch = RowBatch(data).ensure_typed(schema)
    kernel = compile_filter(predicate, schema)
    start = time.perf_counter()
    typed_result = batch.take_mask(kernel(batch))
    typed_seconds = time.perf_counter() - start

    assert len(typed_result) == len(scalar_result)
    print(f"  typed kernel:{typed_seconds * 1e3:8.2f} ms "
          f"— {scalar_seconds / typed_seconds:.0f}x faster")


def run_query(config: StrategyConfig):
    """One client-site UDF query; returns its wire trace and result."""
    schema = Schema.of(("key", INTEGER), ("payload", FLOAT), table="t")
    table = Table(
        "t", schema, rows=[[index % 7, float(index) * 1.5] for index in range(60)]
    )
    registry = UdfRegistry()
    registry.register_function(
        "twice", lambda v: v * 2, result_dtype=INTEGER, result_size_bytes=4
    )
    udf = registry.get("twice")
    context = RemoteExecutionContext.create(
        NetworkConfig.paper_asymmetric(asymmetry=100.0),
        client=ClientRuntime(registry=registry),
    )
    operator = build_operator(
        child=TableScan(table),
        udf=udf,
        argument_columns=["t.key"],
        context=context,
        config=config,
        pushable_predicate=Comparison("<", ColumnRef(udf.result_column_name), Literal(8)),
        output_columns=["t.payload", udf.result_column_name],
    )
    result = operator.run()
    stats = context.channel_stats
    return {
        "messages": (stats.downlink.message_count, stats.uplink.message_count),
        "bytes": (stats.downlink.total_bytes, stats.uplink.total_bytes),
        "rows": sorted(tuple(row) for row in result),
    }


def wire_invariance() -> None:
    print("\nWire traces, typed buffers vs. fully-scalar fallback:")
    print(f"{'strategy':<18} {'msgs (down/up)':>16} {'bytes (down/up)':>20} {'identical':>10}")
    for name, make in (
        ("naive", StrategyConfig.naive),
        ("semi_join", StrategyConfig.semi_join),
        ("client_site_join", StrategyConfig.client_site_join),
    ):
        typed = run_query(make(batch_size=8))
        with scalar_fallback():
            scalar = run_query(make(batch_size=8))
        down, up = typed["messages"]
        down_b, up_b = typed["bytes"]
        print(
            f"{name:<18} {f'{down}/{up}':>16} {f'{down_b}/{up_b}':>20} "
            f"{str(typed == scalar):>10}"
        )
        assert typed == scalar, f"{name}: typed and scalar traces diverged"


def main() -> None:
    kernel_speed()
    wire_invariance()


if __name__ == "__main__":
    main()
