"""Registering untrusted UDF source code under the restricted-exec sandbox.

One of the paper's motivations for client-site UDFs is trust: the server
cannot run arbitrary user code.  In this reproduction the client runtime
accepts UDFs as source text and screens/compiles them in a restricted
environment.  This example registers a legitimate analysis function from
source, shows that hostile source is rejected, and runs a query end to end.

Run with::

    python examples/untrusted_udf_sandbox.py
"""

from __future__ import annotations

from repro import Database, NetworkConfig, SandboxViolation, StrategyConfig
from repro.relational.types import FLOAT, STRING, TIME_SERIES, TimeSeries

ANALYSIS_SOURCE = """
def momentum_score(quotes):
    # A toy momentum indicator: recent average minus overall average.
    overall = sum(quotes) / len(quotes)
    recent = sum(quotes[-5:]) / len(quotes[-5:])
    return round((recent - overall) * 10.0, 3)
"""

HOSTILE_SOURCES = {
    "imports the os module": "import os\ndef f(q):\n    return os.getpid()\n",
    "calls eval": "def f(q):\n    return eval('1 + 1')\n",
    "touches dunder attributes": "def f(q):\n    return q.__class__.__mro__\n",
    "opens files": "def f(q):\n    return open('/etc/passwd').read()\n",
}


def main() -> None:
    db = Database(network=NetworkConfig.paper_symmetric())
    db.create_table("StockQuotes", [("Name", STRING), ("Quotes", TIME_SERIES)])
    table = db.catalog.table("StockQuotes")
    for name, values in [
        ("Riser", [10, 11, 12, 14, 17, 21, 26]),
        ("Flat", [30, 30, 31, 30, 30, 29, 30]),
        ("Faller", [50, 48, 45, 41, 36, 30, 25]),
    ]:
        table.insert([name, TimeSeries([float(v) for v in values])])

    print("Registering the investor's UDF from source (sandboxed)...")
    db.register_client_udf_source(
        "MomentumScore",
        ANALYSIS_SOURCE,
        entry_point="momentum_score",
        result_dtype=FLOAT,
        result_size_bytes=8,
    )

    print("Rejecting hostile UDF source:")
    for label, source in HOSTILE_SOURCES.items():
        try:
            db.register_client_udf_source("Evil", source, entry_point="f", replace=True)
        except SandboxViolation as violation:
            print(f"  rejected ({label}): {violation}")
        else:
            raise AssertionError("hostile source was not rejected")

    result = db.execute(
        "SELECT S.Name, MomentumScore(S.Quotes) AS Score FROM StockQuotes S "
        "WHERE MomentumScore(S.Quotes) > 0",
        config=StrategyConfig.client_site_join(),
    )
    print("\nCompanies with positive momentum (computed at the client):")
    print(result.format_table())
    print("\n" + result.metrics.summary())
    print(
        "\nNote: the sandbox is a prototype trust boundary (AST screening plus a "
        "builtins whitelist), not a hardened security mechanism — see README.md."
    )


if __name__ == "__main__":
    main()
